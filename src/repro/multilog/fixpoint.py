"""The fixpoint characterization behind Theorem 6.1's proof sketch.

The paper argues correctness of the reduction by relating proof-tree
*height* to the step at which the immediate-consequence operator
``T_{Delta_r}`` computes the corresponding fact: "if the proof tree in
MultiLog has height k, then the goal tau(G)[theta] is computed at step k
by the fix-point operator", and the model is ``lfp(T_{Delta_r})``.

This module makes that argument inspectable:

* :func:`fixpoint_steps` runs a *naive*, stepwise immediate-consequence
  iteration over a reduced program and records, for every derived fact,
  the first step at which it appears (strata are evaluated in order and
  step counts accumulate across them).
* :func:`height_step_report` pairs each provable m-/b-atom goal with its
  operational proof height and its fixpoint step, so the paper's bound
  can be checked empirically (``tests/multilog/test_fixpoint.py``).

The bound validated is the monotone formulation: a goal provable with a
tree of height ``k`` is computed within ``k`` fixpoint steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.database import Database, Row
from repro.datalog.engine import _fire_rule, reorder_body
from repro.datalog.rules import Program, Rule
from repro.datalog.stratify import stratify

Fact = tuple[str, Row]


def fixpoint_steps(program: Program) -> dict[Fact, int]:
    """First-appearance step of every fact under stepwise naive iteration.

    Facts of the program are step 0.  Each subsequent step applies every
    rule of the current stratum once to the accumulated database; strata
    are processed lowest-first with a shared, monotonically increasing
    step counter (the stratified analogue of iterating ``T`` to its least
    fixpoint).
    """
    program.check_safety()
    assignment = stratify(program)
    db = Database()
    steps: dict[Fact, int] = {}
    for fact in program.facts:
        if db.add_atom(fact):
            steps[(fact.predicate, fact.ground_tuple())] = 0
    step = 0
    max_stratum = max(assignment.values(), default=0)
    for level in range(max_stratum + 1):
        stratum_predicates = {p for p, s in assignment.items() if s == level}
        rules = [
            Rule(r.head, reorder_body(r.body, r))
            for r in program.rules if r.head.predicate in stratum_predicates
        ]
        if not rules:
            continue
        while True:
            derived: list[Fact] = []
            for rule in rules:
                derived.extend(_fire_rule(rule, db))
            new = [fact for fact in derived if fact not in steps]
            if not new:
                break
            step += 1
            for predicate, row in new:
                if db.add(predicate, row):
                    steps[(predicate, row)] = step
    return steps


@dataclass(frozen=True)
class HeightStepPair:
    """One goal's operational proof height vs its fixpoint step.

    ``specialized`` records whether the reduced program used level
    specialization (the DESIGN.md repair for belief-recursive programs).
    """

    goal: str
    proof_height: int
    fixpoint_step: int
    specialized: bool = False

    @property
    def bounded(self) -> bool:
        """The paper's bound, adjusted for the documented repair.

        For the paper's direct rel/bel reduction the proof-sketch bound
        ``step <= height`` holds as stated.  The level-specialized repair
        routes every belief hop through up to three auxiliary predicates
        (``vis@h``, ``outranked@h``, the ``bel/7`` bridge), so there the
        checkable invariant weakens to ``step <= 3 * height``.
        """
        limit = 3 * self.proof_height if self.specialized else self.proof_height
        return self.fixpoint_step <= limit


def height_step_report(db, clearance: str) -> list[HeightStepPair]:
    """Pair proof heights with fixpoint steps for every derivable cell.

    ``db`` is a MultiLog database; every m-cell derivable at
    ``clearance`` is proved operationally (its tree height measured) and
    located in the reduced program's fixpoint iteration.
    """
    from repro.multilog.proof import OperationalEngine, Prover
    from repro.multilog.reduction import _rel_at, translate

    engine = OperationalEngine(db, clearance)
    prover = Prover(engine)
    reduced = translate(db, clearance)
    steps = fixpoint_steps(reduced.program)
    pairs: list[HeightStepPair] = []
    for cell in sorted(engine.cells(), key=repr):
        pred, key, attr, value, cls, level = cell
        tree = prover._explain_cell(cell)
        if reduced.specialized:
            fact: Fact = (_rel_at(level), (pred, key, attr, value, cls))
        else:
            fact = ("rel", (pred, key, attr, value, cls, level))
        step = steps.get(fact)
        if step is None:
            # Facts asserted directly appear at step 0.
            step = 0
        pairs.append(HeightStepPair(str(cell), tree.height(), step,
                                    reduced.specialized))
    return pairs
