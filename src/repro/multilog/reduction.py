"""Reduction semantics: MultiLog -> Datalog (Section 6, Figure 12).

The translation ``tau`` maps every MultiLog construct to flat Datalog:

* ``l[p(k : a -c-> v)]``          -> ``rel(p, k, a, v, c, l)``
* ``l[p(k : a -c-> v)] << m``     -> ``bel(p, k, a, v, c, l, m)``
* p-/l-/h-atoms map to themselves,

and the encoding ``lambda`` guards every m- and b-atom in rule bodies with
``dominate(l, u)`` and ``dominate(c, u)`` for the session clearance ``u``
(baked in at compile time, as Section 6.2 prescribes).  The invariant
axiom set **A** -- the "MultiLog inference engine" -- is added to every
reduced program.

Two documented repairs to the published Figure 12 (see DESIGN.md):

1. **Safety.** Axioms a6-a9 as printed contain negated atoms with free
   variables (not range-restricted).  :func:`figure12_axioms` reproduces
   them verbatim so the defect is demonstrable (our safety checker
   rejects them); :func:`engine_axioms` is the repaired, stratified
   equivalent using projection predicates (``vis``/``outranked``).

2. **Stratification.** When an m-clause body contains a b-atom (database
   D1's rule r8), the reduced program has recursion through negation
   (``rel -> bel -> not outranked -> vis -> rel``) and no stratified
   model -- despite the paper's claim that "the axioms are actually
   stratified".  The repair is *level specialization*: ``rel``/``bel``/
   ``vis``/``outranked`` are split per security level, which restores
   stratifiability exactly when the program's belief recursion is
   level-acyclic.  :func:`translate` applies it automatically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cache import VersionedMemo
from repro.datalog import Atom as DAtom
from repro.datalog import (
    Database,
    Literal as DLiteral,
    Program,
    Rule,
    evaluate,
    evaluate_goal_rules,
    resolve_backend,
)
from repro.datalog.terms import Constant, Term, Variable
from repro.errors import MultiLogError
from repro.lattice import SecurityLattice
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import (
    BAtom,
    BodyAtom,
    Clause,
    HAtom,
    LAtom,
    LeqGoal,
    MAtom,
    MultiLogDatabase,
    PAtom,
    Query,
)
from repro.multilog.proof import BUILTIN_MODES, USER_BELIEF_PREDICATE, atomize_body
from repro.obs.context import current as _current_obs

ANSWER_PREDICATE = "__answer"


def figure12_axioms() -> list[Rule]:
    """The axiom set **A** exactly as printed in Figure 12.

    Axioms a6, a7 and a9 are *not range-restricted* (e.g. a7 negates
    ``rel(P,K,A,V',C',H)`` with ``V'``/``C'`` appearing nowhere
    positively).  They are reproduced verbatim so tests can demonstrate
    that a safety-checking engine rejects them; use
    :func:`engine_axioms` for the repaired set.
    """
    v = Variable
    return [
        # a1-a3: dominate
        Rule(DAtom("dominate", (v("X"), v("Y"))), (DLiteral(DAtom("order", (v("X"), v("Y")))),)),
        Rule(DAtom("dominate", (v("X"), v("X"))), (DLiteral(DAtom("level", (v("X"),))),)),
        Rule(DAtom("dominate", (v("X"), v("Y"))),
             (DLiteral(DAtom("order", (v("X"), v("Z")))),
              DLiteral(DAtom("dominate", (v("Z"), v("Y")))))),
        # a4: firm
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("fir"))),
             (DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H")))),)),
        # a5: optimistic
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("opt"))),
             (DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L")))),
              DLiteral(DAtom("dominate", (v("L"), v("H")))))),
        # a6: cautious, local cell at the bottom of its chain (UNSAFE: L free)
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("cau"))),
             (DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H")))),
              DLiteral(DAtom("order", (v("L"), v("H"))), positive=False))),
        # a7: cautious, inherited (UNSAFE: V', C' free under negation)
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("cau"))),
             (DLiteral(DAtom("order", (v("L"), v("H")))),
              DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("Vp"), v("Cp"), v("H"))),
                       positive=False),
              DLiteral(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L"),
                                     Constant("cau")))))),
        # a8: cautious, lower cell overrides the local one
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("cau"))),
             (DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("Vp"), v("Cp"), v("H")))),
              DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L")))),
              DLiteral(DAtom("dominate", (v("L"), v("H")))),
              DLiteral(DAtom("dominate", (v("Cp"), v("C")))))),
        # a9: cautious, local cell survives (UNSAFE: V', C', L free)
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("cau"))),
             (DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H")))),
              DLiteral(DAtom("rel", (v("P"), v("K"), v("A"), v("Vp"), v("Cp"), v("L"))),
                       positive=False),
              DLiteral(DAtom("dominate", (v("L"), v("H")))),
              DLiteral(DAtom("dominate", (v("C"), v("Cp")))))),
    ]


def engine_axioms() -> list[Rule]:
    """The repaired, range-restricted, stratified MultiLog inference engine.

    Semantically equivalent to the intent of Figure 12 (cautious =
    "visible and not outranked"), expressed with projection predicates so
    every negated atom is ground at call time.
    """
    v = Variable
    rel = lambda *args: DLiteral(DAtom("rel", args))  # noqa: E731
    return [
        Rule(DAtom("dominate", (v("X"), v("Y"))), (DLiteral(DAtom("order", (v("X"), v("Y")))),)),
        Rule(DAtom("dominate", (v("X"), v("X"))), (DLiteral(DAtom("level", (v("X"),))),)),
        Rule(DAtom("dominate", (v("X"), v("Y"))),
             (DLiteral(DAtom("order", (v("X"), v("Z")))),
              DLiteral(DAtom("dominate", (v("Z"), v("Y")))))),
        Rule(DAtom("strictly_below", (v("X"), v("Y"))),
             (DLiteral(DAtom("dominate", (v("X"), v("Y")))),
              DLiteral(DAtom("!=", (v("X"), v("Y")))))),
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("fir"))),
             (rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("H")),)),
        Rule(DAtom("vis", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L"), v("H"))),
             (rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("L")),
              DLiteral(DAtom("dominate", (v("L"), v("H")))),
              DLiteral(DAtom("level", (v("H"),))))),
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("opt"))),
             (DLiteral(DAtom("vis", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L"), v("H")))),)),
        Rule(DAtom("outranked", (v("P"), v("K"), v("A"), v("C"), v("H"))),
             (DLiteral(DAtom("vis", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L"), v("H")))),
              DLiteral(DAtom("vis", (v("P"), v("K"), v("A"), v("V2"), v("C2"), v("L2"), v("H")))),
              DLiteral(DAtom("strictly_below", (v("C"), v("C2")))))),
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), Constant("cau"))),
             (DLiteral(DAtom("vis", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L"), v("H")))),
              DLiteral(DAtom("outranked", (v("P"), v("K"), v("A"), v("C"), v("H"))),
                       positive=False))),
    ]


def faithful_figure12_axioms() -> list[Rule]:
    """Figure 12's cautious axioms a6-a9 made *safe* but not *repaired*.

    Each printed axiom's logic is preserved; only the range-restriction
    defects are patched with projection predicates:

    * a6 -- a cell stored at a level with no level below it is believed
      (``not has_parent(H)`` replaces the unsafe ``not order(L, H)``);
    * a7 -- inherit a cautious belief from an immediate predecessor when
      the believing level stores no cell for the same column
      (``not has_cell(P,K,A,H)`` replaces the unsafe negated rel);
    * a8 -- verbatim (it was already safe);
    * a9 -- keep a local cell unless some lower-level cell's
      classification dominates it (projected through ``overridden9``).

    :func:`compare_cautious_axiomatizations` measures where this faithful
    reading diverges from the Definition 3.1 semantics implemented by
    :func:`engine_axioms` -- the printed axioms are not only unsafe, they
    are also *incomplete* on databases the definition handles.
    """
    v = Variable
    rel = lambda *args: DLiteral(DAtom("rel", args))  # noqa: E731
    cau = Constant("cau")
    return [
        Rule(DAtom("dominate", (v("X"), v("Y"))), (DLiteral(DAtom("order", (v("X"), v("Y")))),)),
        Rule(DAtom("dominate", (v("X"), v("X"))), (DLiteral(DAtom("level", (v("X"),))),)),
        Rule(DAtom("dominate", (v("X"), v("Y"))),
             (DLiteral(DAtom("order", (v("X"), v("Z")))),
              DLiteral(DAtom("dominate", (v("Z"), v("Y")))))),
        Rule(DAtom("has_parent", (v("H"),)), (DLiteral(DAtom("order", (v("L"), v("H")))),)),
        Rule(DAtom("has_cell", (v("P"), v("K"), v("A"), v("H"))),
             (rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("H")),)),
        # a6: local cell at a bottom level.
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), cau)),
             (rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("H")),
              DLiteral(DAtom("has_parent", (v("H"),)), positive=False))),
        # a7: inherit through an immediate predecessor when nothing local.
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), cau)),
             (DLiteral(DAtom("order", (v("L"), v("H")))),
              DLiteral(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("L"), cau))),
              DLiteral(DAtom("has_cell", (v("P"), v("K"), v("A"), v("H"))), positive=False))),
        # a8: a lower cell whose classification dominates the local one.
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), cau)),
             (rel(v("P"), v("K"), v("A"), v("Vp"), v("Cp"), v("H")),
              rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("L")),
              DLiteral(DAtom("dominate", (v("L"), v("H")))),
              DLiteral(DAtom("dominate", (v("Cp"), v("C")))))),
        # a9: local cell survives unless a lower cell's class dominates it.
        Rule(DAtom("overridden9", (v("P"), v("K"), v("A"), v("C"), v("H"))),
             (rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("H")),
              rel(v("P"), v("K"), v("A"), v("Vp"), v("Cp"), v("L")),
              DLiteral(DAtom("dominate", (v("L"), v("H")))),
              DLiteral(DAtom("dominate", (v("C"), v("Cp")))))),
        Rule(DAtom("bel", (v("P"), v("K"), v("A"), v("V"), v("C"), v("H"), cau)),
             (rel(v("P"), v("K"), v("A"), v("V"), v("C"), v("H")),
              DLiteral(DAtom("overridden9", (v("P"), v("K"), v("A"), v("C"), v("H"))),
                       positive=False))),
    ]


def compare_cautious_axiomatizations(db: MultiLogDatabase, clearance: str) -> dict[str, set[tuple]]:
    """Cautious beliefs: faithful Figure 12 reading vs Definition 3.1.

    Returns ``{"faithful_only": ..., "spec_only": ...}`` per
    ``(p,k,a,v,c,h)`` row over all levels dominated by ``clearance``;
    empty sets mean the printed axioms (made safe) coincide with the
    repaired engine on this database.
    """
    context = check_admissibility(db)
    lattice = context.lattice
    lattice.check_level(clearance)

    def run(axioms: list[Rule]) -> set[tuple]:
        translator = _Translator(clearance, context, False, frozenset())
        program = Program()
        for row in sorted(context.level_rows):
            program.add_fact(DAtom("level", tuple(Constant(x) for x in row)))
        for row in sorted(context.order_rows):
            program.add_fact(DAtom("order", tuple(Constant(x) for x in row)))
        for clause in db.atomized_secured_clauses() + db.atomized_plain_clauses():
            for rule in translator.translate_clause(clause):
                program.add_rule(rule)
        for rule in axioms:
            program.add_rule(rule)
        model = evaluate(program)
        return {
            row for row in model.rows("bel")
            if str(row[6]) == "cau" and lattice.leq(str(row[5]), clearance)
        }

    faithful = run(faithful_figure12_axioms())
    spec = run(engine_axioms())
    return {"faithful_only": faithful - spec, "spec_only": spec - faithful}


# ----------------------------------------------------------------------
# Translation
# ----------------------------------------------------------------------
@dataclass
class ReducedProgram:
    """``Delta_r = <tau(Delta), A>`` ready for bottom-up evaluation."""

    program: Program
    clearance: str
    context: LatticeContext
    specialized: bool
    user_modes: frozenset[str]
    #: resolved storage backend the least model is computed on; the
    #: columnar backend is paired with the vectorized strategy.
    backend: str = "dict"
    _model: Database | None = None
    #: how many times the full fixpoint actually ran -- repeated queries
    #: against the cached least model must leave this at 1.
    fixpoint_runs: int = 0

    # -- evaluation -------------------------------------------------------
    def model(self) -> Database:
        """The stratified least model (cached)."""
        if self._model is None:
            self.fixpoint_runs += 1
            strategy = "vectorized" if self.backend == "columnar" else "compiled"
            self._model = evaluate(self.program, strategy=strategy,
                                   backend=self.backend)
        return self._model

    def rel_rows(self) -> set[tuple]:
        """All derived cells as ``(p, k, a, v, c, l)`` rows."""
        if not self.specialized:
            return set(self.model().rows("rel"))
        rows: set[tuple] = set()
        for level in self.context.lattice.levels:
            for row in self.model().rows(_rel_at(level)):
                rows.add((*row, level))
        return rows

    def bel_rows(self, mode: str, level: str) -> set[tuple]:
        """Cells believed at ``level`` in ``mode``: ``(p, k, a, v, c)`` rows.

        Note the projection: the reduction's ``bel`` carries the believing
        level and the *cell's* classification, not its source level.
        """
        self.context.lattice.check_level(level)
        rows: set[tuple] = set()
        if not self.specialized or mode in self.user_modes:
            for row in self.model().rows("bel"):
                if str(row[5]) == level and str(row[6]) == mode:
                    rows.add(tuple(row[:5]))
        if self.specialized and mode in BUILTIN_MODES:
            for row in self.model().rows(_bel_at(level)):
                if str(row[5]) == mode:
                    rows.add(tuple(row[:5]))
        return rows

    def audit_model(self, audit) -> None:
        """Emit MLS audit events implied by the computed least model.

        The reduction path never *enumerates* downward reads while
        joining -- they are ordinary Datalog tuples -- but the repaired
        axioms materialize exactly the projections an auditor needs:
        every ``vis`` row with source level below believing level is a
        ``cross_level_read``, and every ``outranked`` row is a cautious
        ``override``.  Only believing levels at or below this program's
        clearance are reported (levels above it are never served).
        """
        lattice = self.context.lattice
        model = self.model()
        if self.specialized:
            for level in sorted(lattice.levels):
                if not lattice.leq(level, self.clearance):
                    continue
                for row in model.rows(_vis_at(level)):
                    source = str(row[5])
                    if source != level:
                        audit.emit("cross_level_read", subject=level,
                                   object=source, mode="opt",
                                   predicate=str(row[0]))
                for row in model.rows(_outranked_at(level)):
                    audit.emit("override", subject=level, object=str(row[3]),
                               mode="cau", predicate=str(row[0]),
                               attribute=str(row[2]))
            return
        for row in model.rows("vis"):
            source, believer = str(row[5]), str(row[6])
            if source != believer and lattice.leq(believer, self.clearance):
                audit.emit("cross_level_read", subject=believer, object=source,
                           mode="opt", predicate=str(row[0]))
        for row in model.rows("outranked"):
            believer = str(row[4])
            if lattice.leq(believer, self.clearance):
                audit.emit("override", subject=believer, object=str(row[3]),
                           mode="cau", predicate=str(row[0]),
                           attribute=str(row[2]))

    def query(self, query: Query) -> list[dict[str, object]]:
        """Answer a MultiLog query against the reduced program.

        Returns one ``{variable_name: value}`` dict per distinct answer.
        The least model is computed once (see :meth:`model`); each query
        only fires its non-recursive ``__answer`` rules against it, so
        repeated asks never re-run the fixpoint.
        """
        body = atomize_body(query.body)
        variables = sorted(
            {v for atom in body for v in atom.variables()}, key=lambda v: v.name
        )
        translator = _Translator(self.clearance, self.context, self.specialized,
                                 self.user_modes)
        goal_rules = []
        for grounding, datalog_body in translator.body_alternatives(body):
            head_args = tuple(translator._subst_term(v, grounding) for v in variables)
            goal_rules.append(Rule(DAtom(ANSWER_PREDICATE, head_args), datalog_body))
        rows = evaluate_goal_rules(self.model(), goal_rules).get(ANSWER_PREDICATE, set())
        return [
            {v.name: value for v, value in zip(variables, row)}
            for row in rows
        ]


def _rel_at(level: str) -> str:
    return f"rel@{level}"


def _bel_at(level: str) -> str:
    return f"bel@{level}"


def _vis_at(level: str) -> str:
    return f"vis@{level}"


def _outranked_at(level: str) -> str:
    return f"outranked@{level}"


class _Translator:
    """Implements tau and lambda for one session clearance."""

    def __init__(self, clearance: str, context: LatticeContext,
                 specialized: bool, user_modes: frozenset[str]):
        self.clearance = clearance
        self.context = context
        self.lattice: SecurityLattice = context.lattice
        self.specialized = specialized
        self.user_modes = user_modes

    # -- level grounding (specialized mode) --------------------------------
    def _level_variables(self, atoms: list[BodyAtom]) -> list[Variable]:
        """Variables occurring in level slots of m-/b-atoms."""
        out: list[Variable] = []
        for atom in atoms:
            matom = atom.matom if isinstance(atom, BAtom) else atom
            if isinstance(matom, MAtom) and isinstance(matom.level, Variable):
                if matom.level not in out:
                    out.append(matom.level)
        return out

    def _level_groundings(self, atoms: list[BodyAtom]) -> list[dict[Variable, Constant]]:
        if not self.specialized:
            return [{}]
        level_vars = self._level_variables(atoms)
        if not level_vars:
            return [{}]
        candidates = sorted(self.lattice.down_set(self.clearance))
        groundings = []
        for combo in itertools.product(candidates, repeat=len(level_vars)):
            groundings.append({var: Constant(level) for var, level in zip(level_vars, combo)})
        return groundings

    @staticmethod
    def _subst_term(term: Term, grounding: dict[Variable, Constant]) -> Term:
        if isinstance(term, Variable) and term in grounding:
            return grounding[term]
        return term

    # -- atoms --------------------------------------------------------------
    def _rel_atom(self, matom: MAtom, grounding: dict[Variable, Constant]) -> DAtom:
        level = self._subst_term(matom.level, grounding)
        args = (Constant(matom.pred), self._subst_term(matom.key, grounding),
                Constant(matom.attr), self._subst_term(matom.value, grounding),
                self._subst_term(matom.cls, grounding))
        if self.specialized:
            if not isinstance(level, Constant):
                raise MultiLogError(
                    f"level of {matom} must be ground for the specialized reduction"
                )
            return DAtom(_rel_at(str(level.value)), args)
        return DAtom("rel", (*args, level))

    def _bel_atom(self, batom: BAtom, grounding: dict[Variable, Constant]) -> DAtom:
        matom = batom.matom
        level = self._subst_term(matom.level, grounding)
        args = (Constant(matom.pred), self._subst_term(matom.key, grounding),
                Constant(matom.attr), self._subst_term(matom.value, grounding),
                self._subst_term(matom.cls, grounding))
        mode = batom.mode
        if isinstance(mode, Constant) and str(mode.value) in self.user_modes:
            if not isinstance(level, Constant):
                raise MultiLogError(
                    f"level of {batom} must be ground for a user-defined mode"
                )
            return DAtom(USER_BELIEF_PREDICATE, (*args, level, mode))
        if self.specialized:
            if not isinstance(level, Constant):
                raise MultiLogError(
                    f"level of {batom} must be ground for the specialized reduction"
                )
            return DAtom(_bel_at(str(level.value)), (*args, mode))
        return DAtom("bel", (*args, level, mode))

    def _guards(self, level: Term, cls: Term,
                grounding: dict[Variable, Constant]) -> list[DLiteral]:
        """The lambda encoding: ``dominate(l, u)`` and ``dominate(c, u)``."""
        u = Constant(self.clearance)
        return [
            DLiteral(DAtom("dominate", (self._subst_term(level, grounding), u))),
            DLiteral(DAtom("dominate", (self._subst_term(cls, grounding), u))),
        ]

    def translate_body_atom(self, atom: BodyAtom,
                            grounding: dict[Variable, Constant]) -> list[DLiteral]:
        if isinstance(atom, MAtom):
            return [DLiteral(self._rel_atom(atom, grounding))] + \
                self._guards(atom.level, atom.cls, grounding)
        if isinstance(atom, BAtom):
            return [DLiteral(self._bel_atom(atom, grounding))] + \
                self._guards(atom.matom.level, atom.matom.cls, grounding)
        if isinstance(atom, PAtom):
            args = tuple(self._subst_term(a, grounding) for a in atom.args)
            return [DLiteral(DAtom(atom.pred, args))]
        if isinstance(atom, LAtom):
            return [DLiteral(DAtom("level", (self._subst_term(atom.level, grounding),)))]
        if isinstance(atom, HAtom):
            return [DLiteral(DAtom("order", (self._subst_term(atom.low, grounding),
                                             self._subst_term(atom.high, grounding))))]
        if isinstance(atom, LeqGoal):
            return [DLiteral(DAtom("dominate", (self._subst_term(atom.low, grounding),
                                                self._subst_term(atom.high, grounding))))]
        raise MultiLogError(f"cannot translate body atom {atom!r}")

    def body_alternatives(
        self, body: tuple[BodyAtom, ...]
    ) -> list[tuple[dict[Variable, Constant], tuple[DLiteral, ...]]]:
        """All grounded translations of a body, with their level groundings."""
        alternatives = []
        for grounding in self._level_groundings(list(body)):
            literals: list[DLiteral] = []
            for atom in body:
                literals.extend(self.translate_body_atom(atom, grounding))
            alternatives.append((grounding, tuple(literals)))
        return alternatives

    # -- clauses --------------------------------------------------------------
    def translate_clause(self, clause: Clause) -> list[Rule]:
        head = clause.head
        body = atomize_body(clause.body)
        rules: list[Rule] = []
        if isinstance(head, MAtom):
            for grounding in self._level_groundings(list(body)):
                head_atom = self._rel_atom(head, grounding)
                literals: list[DLiteral] = []
                for atom in body:
                    literals.extend(self.translate_body_atom(atom, grounding))
                rules.append(Rule(head_atom, tuple(literals)))
            return rules
        if isinstance(head, PAtom):
            head_atom = DAtom(head.pred, head.args)
        elif isinstance(head, LAtom):
            head_atom = DAtom("level", (head.level,))
        elif isinstance(head, HAtom):
            head_atom = DAtom("order", (head.low, head.high))
        else:
            raise MultiLogError(f"cannot translate clause head {head!r}")
        for grounding in self._level_groundings(list(body)):
            literals = []
            for atom in body:
                literals.extend(self.translate_body_atom(atom, grounding))
            rules.append(Rule(head_atom, tuple(literals)))
        return rules

    def specialized_axioms(self) -> list[Rule]:
        """The engine axioms split per security level."""
        v = Variable
        rules = [
            Rule(DAtom("dominate", (v("X"), v("Y"))),
                 (DLiteral(DAtom("order", (v("X"), v("Y")))),)),
            Rule(DAtom("dominate", (v("X"), v("X"))),
                 (DLiteral(DAtom("level", (v("X"),))),)),
            Rule(DAtom("dominate", (v("X"), v("Y"))),
                 (DLiteral(DAtom("order", (v("X"), v("Z")))),
                  DLiteral(DAtom("dominate", (v("Z"), v("Y")))))),
            Rule(DAtom("strictly_below", (v("X"), v("Y"))),
                 (DLiteral(DAtom("dominate", (v("X"), v("Y")))),
                  DLiteral(DAtom("!=", (v("X"), v("Y")))))),
        ]
        cell = (v("P"), v("K"), v("A"), v("V"), v("C"))
        for h in sorted(self.lattice.levels):
            rules.append(Rule(
                DAtom(_bel_at(h), (*cell, Constant("fir"))),
                (DLiteral(DAtom(_rel_at(h), cell)),),
            ))
            for low in sorted(self.lattice.down_set(h)):
                rules.append(Rule(
                    DAtom(_vis_at(h), (*cell, Constant(low))),
                    (DLiteral(DAtom(_rel_at(low), cell)),),
                ))
            rules.append(Rule(
                DAtom(_bel_at(h), (*cell, Constant("opt"))),
                (DLiteral(DAtom(_vis_at(h), (*cell, v("L")))),),
            ))
            rules.append(Rule(
                DAtom(_outranked_at(h), (v("P"), v("K"), v("A"), v("C"))),
                (DLiteral(DAtom(_vis_at(h), (*cell, v("L")))),
                 DLiteral(DAtom(_vis_at(h), (v("P"), v("K"), v("A"), v("V2"), v("C2"), v("L2")))),
                 DLiteral(DAtom("strictly_below", (v("C"), v("C2"))))),
            ))
            rules.append(Rule(
                DAtom(_bel_at(h), (*cell, Constant("cau"))),
                (DLiteral(DAtom(_vis_at(h), (*cell, v("L")))),
                 DLiteral(DAtom(_outranked_at(h), (v("P"), v("K"), v("A"), v("C"))),
                          positive=False)),
            ))
            # Bridge: expose built-in beliefs as bel/7 so user-defined
            # modes (plain bel/7 rules in Pi) keep working when the
            # program is level-specialized.
            rules.append(Rule(
                DAtom(USER_BELIEF_PREDICATE, (*cell, Constant(h), v("M"))),
                (DLiteral(DAtom(_bel_at(h), (*cell, v("M")))),),
            ))
        return rules


def needs_specialization(db: MultiLogDatabase) -> bool:
    """True when any clause body contains a b-atom (possible belief feedback).

    A b-atom in a Sigma body makes the single-predicate reduction
    unstratifiable outright; one in a Pi body can do so through a
    p-predicate consumed by Sigma.  Specialization is sound in both cases,
    so the check is deliberately syntactic and conservative.
    """
    for clause in db.atomized_secured_clauses() + db.atomized_plain_clauses():
        for atom in atomize_body(clause.body):
            if isinstance(atom, BAtom):
                return True
    return False


#: tau-translations memoized per database: key ``(clearance, specialize,
#: backend)``, stamped with the database's clause-count version.  Sessions
#: over the same database at the same clearance (and backend) share one
#: ReducedProgram -- and therefore one cached least model.
_TRANSLATE_MEMO = VersionedMemo("tau-translations")


def translate(db: MultiLogDatabase, clearance: str,
              context: LatticeContext | None = None,
              specialize: bool | None = None,
              backend: str | None = None) -> ReducedProgram:
    """``tau`` applied to a whole database, plus the axiom set **A**.

    Memoized per ``(database-version, clearance, specialize, backend)``;
    adding any clause bumps the database version and invalidates.
    """
    resolved = resolve_backend(backend)
    return _TRANSLATE_MEMO.get_or_compute(
        db, db.version, (clearance, specialize, resolved),
        lambda: _translate(db, clearance, context, specialize, resolved),
    )


def _translate(db: MultiLogDatabase, clearance: str,
               context: LatticeContext | None = None,
               specialize: bool | None = None,
               backend: str = "dict") -> ReducedProgram:
    with _current_obs().recorder.span("tau-translate", clearance=clearance) as span:
        resolved_context = context if context is not None else check_admissibility(db)
        resolved_context.lattice.check_level(clearance)
        if specialize is None:
            # Prefer the paper-faithful single rel/bel reduction; fall back to
            # level specialization when belief feedback makes it unstratifiable.
            specialized = needs_specialization(db)
        else:
            specialized = specialize

        user_modes: set[str] = set()
        for clause in db.atomized_plain_clauses():
            head = clause.head
            if (isinstance(head, PAtom) and head.pred == USER_BELIEF_PREDICATE
                    and len(head.args) == 7 and isinstance(head.args[6], Constant)):
                user_modes.add(str(head.args[6].value))

        translator = _Translator(clearance, resolved_context, specialized,
                                 frozenset(user_modes))
        program = Program()
        for row in sorted(resolved_context.level_rows):
            program.add_fact(DAtom("level", tuple(Constant(v) for v in row)))
        for row in sorted(resolved_context.order_rows):
            program.add_fact(DAtom("order", tuple(Constant(v) for v in row)))
        for clause in db.atomized_secured_clauses() + db.atomized_plain_clauses():
            for rule in translator.translate_clause(clause):
                program.add_rule(rule)
        axioms = translator.specialized_axioms() if specialized else engine_axioms()
        for rule in axioms:
            program.add_rule(rule)
        span.set(rules=len(program.rules), facts=len(program.facts),
                 specialized=specialized)
    return ReducedProgram(program, clearance, resolved_context, specialized,
                          frozenset(user_modes), backend=backend)
