"""The high-level MultiLog API: sessions bound to a clearance.

A :class:`MultiLogSession` wraps one database at one database level
(Definition 5.5) and exposes querying through either semantics:

>>> from repro.multilog import MultiLogSession
>>> session = MultiLogSession('''
...     level(u). level(s). order(u, s).
...     u[acct(alice : balance -u-> 100)].
...     s[acct(alice : balance -s-> 900)].
... ''', clearance="s")
>>> session.ask("s[acct(alice : balance -C-> B)] << cau")
[{'B': 900, 'C': 's'}]

Queries default to the operational engine; ``engine="reduction"`` runs
the same query through the tau translation and the Datalog back-end
(Theorem 6.1 says the answers agree -- the test suite checks it).

Every ``ask`` runs under an observation context: spans, per-rule firing
counts and cache hit rates are collected into :meth:`MultiLogSession.
last_stats` (cumulative counters, per-ask span tree).  An optional
:class:`~repro.obs.budget.EvaluationBudget` bounds each ask; overruns
raise :class:`~repro.errors.BudgetExceededError` with partial metrics
attached.

Sessions sharing one database stay coherent: cached engines are keyed on
``database.version``, so a sibling created by :meth:`with_clearance`
sees clauses asserted through any other session (the pre-fix behaviour
served stale answers from the sibling's cached engine).
"""

from __future__ import annotations

from pathlib import Path

from repro.datalog.terms import Constant
from repro.errors import (
    BudgetExceededError,
    ConsistencyError,
    MultiLogError,
    RecoveryError,
    ReproError,
    UnknownModeError,
)
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import Clause, LAtom, MultiLogDatabase, Query
from repro.multilog.consistency import ConsistencyReport, check_consistency
from repro.multilog.parser import parse_clause, parse_database, parse_query
from repro.multilog.proof import (
    BUILTIN_MODES,
    CellRow,
    OperationalEngine,
    ProofTree,
    Prover,
)
from repro.multilog.reduction import ReducedProgram, translate
from repro.obs.budget import EvaluationBudget
from repro.obs.context import ObsContext, current as _current_obs, use as _use_obs
from repro.obs.explain import explain_program
from repro.obs.metrics import EngineMetrics, MetricsCollector
from repro.obs.trace import TraceRecorder

#: Level injected when a program declares no lattice at all -- the
#: degenerate Datalog case of Proposition 6.1 ("perhaps system").
SYSTEM_LEVEL = "system"


class MultiLogSession:
    """One user's view of a MultiLog database at a fixed clearance."""

    def __init__(self, source: str | MultiLogDatabase, clearance: str | None = None,
                 budget: EvaluationBudget | None = None, lint: bool = False,
                 journal=None):
        if isinstance(source, str):
            self.database = parse_database(source)
        else:
            self.database = source
        if not self.database.lattice_clauses:
            self.database.add(Clause(LAtom(Constant(SYSTEM_LEVEL))))
        self.context: LatticeContext = check_admissibility(self.database)
        if clearance is None:
            tops = sorted(self.context.lattice.tops())
            if len(tops) != 1:
                raise MultiLogError(
                    "clearance not given and the lattice has no unique top; "
                    f"choose one of {tops}"
                )
            clearance = tops[0]
        self.clearance = self.context.lattice.check_level(clearance)
        #: per-ask limits; ``None`` means unbounded.
        self.budget = budget
        self._engine: OperationalEngine | None = None
        self._reduced: ReducedProgram | None = None
        #: database version the caches (engine, reduced, context) were
        #: built against; siblings over the same database compare it to
        #: spot mutations made through *other* sessions.
        self._cache_version = self.database.version
        self._metrics = MetricsCollector()
        self._last_recorder: TraceRecorder | None = None
        self._last_stats: EngineMetrics | None = None
        #: armed :class:`~repro.resilience.FaultPlan` (chaos testing); asks
        #: also honour a plan on the ambient ObsContext.
        self._fault_plan = None
        #: write-ahead journal; ``assert_clause`` appends-and-fsyncs here
        #: *after* validation, *before* acknowledging.
        self.journal = None
        #: Definition 5.4 report computed by :meth:`recover` (else ``None``).
        self.recovery_report: ConsistencyReport | None = None
        if journal is not None:
            self.attach_journal(journal)
        if lint:
            report = self.analyze()
            if not report.ok:
                from repro.errors import AnalysisError
                raise AnalysisError(report.render_text(), report)

    # ------------------------------------------------------------------
    def _revalidate(self) -> None:
        """Drop cached engines when the shared database has moved on.

        ``assert_clause`` through any session over the same database
        bumps ``database.version``; comparing against the version our
        caches were built at keeps every sibling session coherent.
        """
        version = self.database.version
        if version != self._cache_version:
            self.context = check_admissibility(self.database)
            self._engine = None
            self._reduced = None
            self._cache_version = version

    @property
    def lattice(self):
        return self.context.lattice

    @property
    def engine(self) -> OperationalEngine:
        self._revalidate()
        if self._engine is None:
            self._engine = OperationalEngine(self.database, self.clearance, self.context)
        return self._engine

    @property
    def reduced(self) -> ReducedProgram:
        """The tau-translated Datalog program (Section 6), cached."""
        self._revalidate()
        if self._reduced is None:
            self._reduced = translate(self.database, self.clearance, self.context)
        return self._reduced

    @property
    def modes(self) -> frozenset[str]:
        return self.engine.modes

    def with_clearance(self, clearance: str) -> "MultiLogSession":
        """A sibling session over the same database at another level.

        The sibling shares the journal too: an assert through *any*
        session over this database must be as durable as through the one
        the journal was attached to.
        """
        return MultiLogSession(self.database, clearance, budget=self.budget,
                               journal=self.journal)

    # ------------------------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Start journaling this database's updates to ``journal``.

        ``journal`` is a :class:`~repro.resilience.SessionJournal` or a
        path.  A fresh (empty) journal is seeded with a snapshot of the
        current database, so recovery rebuilds the whole state, not just
        the clauses asserted after attachment.
        """
        from repro.resilience.journal import SessionJournal

        if not isinstance(journal, SessionJournal):
            journal = SessionJournal(journal)
        self.journal = journal
        if not journal.path.exists() or journal.path.stat().st_size == 0:
            journal.snapshot(self.database)

    @classmethod
    def recover(cls, path, clearance: str | None = None,
                budget: EvaluationBudget | None = None,
                require_consistent: bool = False) -> "MultiLogSession":
        """Rebuild a session from a journal after a crash.

        Replays the journal (latest snapshot + subsequent clauses) and
        re-checks the paper's update guarantees on the recovered
        database: Definition 5.3 (admissibility) is enforced -- an
        inadmissible replay raises :class:`~repro.errors.RecoveryError`
        -- and the Definition 5.4 consistency checks are run and stored
        on the returned session as ``recovery_report``.  Consistency is
        *reported* rather than enforced by default because Def 5.4 is a
        property many valid databases never had (e.g. no key cells);
        ``require_consistent=True`` turns a failing report into a
        :class:`~repro.errors.RecoveryError` for callers whose database
        is supposed to stay consistent across crashes.  The returned
        session keeps journaling to the same file.
        """
        from repro.resilience.journal import SessionJournal

        journal = path if isinstance(path, SessionJournal) else SessionJournal(path)
        if not journal.path.exists():
            raise RecoveryError(f"no journal at {journal.path}")
        database = journal.replay()
        try:
            session = cls(database, clearance, budget=budget)
        except ReproError as exc:
            raise RecoveryError(
                f"recovered database fails admissibility (Def 5.3): {exc}"
            ) from exc
        report = session.check_consistency()
        session.recovery_report = report
        if require_consistent and not report.ok:
            raise RecoveryError(
                "recovered database fails consistency (Def 5.4):\n"
                + "\n".join(report.all_messages()), report)
        session.journal = journal
        return session

    # ------------------------------------------------------------------
    def arm_faults(self, plan) -> None:
        """Arm a :class:`~repro.resilience.FaultPlan` for this session's
        asks (chaos testing); :meth:`disarm_faults` removes it."""
        self._fault_plan = plan

    def disarm_faults(self) -> None:
        self._fault_plan = None

    # ------------------------------------------------------------------
    def ask(self, query: str | Query, engine: str = "operational") -> list[dict[str, object]]:
        """Answer a query; one ``{variable: value}`` dict per answer.

        Runs under a fresh trace recorder and this session's cumulative
        metrics collector; inspect the result with :meth:`last_stats` /
        :meth:`last_trace`.  When the session has a budget, an overrun
        raises :class:`~repro.errors.BudgetExceededError` carrying the
        partial :class:`~repro.obs.metrics.EngineMetrics`.
        """
        if engine not in ("operational", "reduction"):
            raise MultiLogError(f"unknown engine {engine!r}; use 'operational' or 'reduction'")
        recorder = TraceRecorder()
        meter = self.budget.meter() if self.budget is not None else None
        faults = self._fault_plan if self._fault_plan is not None \
            else _current_obs().faults
        ctx = ObsContext(recorder, self._metrics, meter, faults)
        # ctx.recorder is the fault-wrapped view of ``recorder`` (identical
        # when no plan is armed): session-level spans must announce through
        # it so ``query``/``parse`` are injectable fault points too.
        spans = ctx.recorder
        self._metrics.count_ask()
        try:
            with _use_obs(ctx):
                with spans.span("query", engine=engine) as span:
                    with spans.span("parse"):
                        parsed = parse_query(query) if isinstance(query, str) else query
                    if engine == "operational":
                        answers = self.engine.solve(parsed)
                    else:
                        answers = self.reduced.query(parsed)
                    span.set(answers=len(answers))
        except BudgetExceededError as exc:
            self._finish_ask(recorder, budget_exceeded=exc.reason)
            exc.metrics = self._last_stats
            raise
        self._finish_ask(recorder)
        return answers

    def _finish_ask(self, recorder: TraceRecorder,
                    budget_exceeded: str | None = None) -> None:
        self._last_recorder = recorder
        self._last_stats = self._metrics.snapshot(recorder, budget_exceeded=budget_exceeded)

    def _mark_degraded(self, rung: str, reason: str) -> None:
        """Stamp the most recent ask as degraded (resilience layer hook).

        Surfaces through :meth:`last_stats` (``degraded="rung:reason"``)
        and a ``degraded`` attribute on the ask's root span, so ``:stats``
        and ``:trace`` show that the answers came from a fallback rung or
        a budget-truncated run.
        """
        import dataclasses

        if self._last_recorder is not None and self._last_recorder.roots:
            self._last_recorder.roots[-1].set(degraded=True, rung=rung)
        if self._last_stats is not None:
            self._last_stats = dataclasses.replace(
                self._last_stats, degraded=f"{rung}:{reason}",
                spans=tuple(self._last_recorder.to_dicts())
                if self._last_recorder is not None else self._last_stats.spans)

    def last_stats(self) -> EngineMetrics | None:
        """Metrics snapshot taken at the end of the most recent ask.

        Counters (firings, probes, rounds, asks) are cumulative across
        this session's lifetime; ``spans`` is the most recent ask's trace.
        ``None`` before the first ask.
        """
        return self._last_stats

    def last_trace(self) -> TraceRecorder | None:
        """The span recorder of the most recent ask (``None`` before one)."""
        return self._last_recorder

    def explain(self) -> str:
        """An EXPLAIN dump of the reduced program's compiled join plans."""
        return explain_program(self.reduced.program)

    def holds(self, query: str | Query, engine: str = "operational") -> bool:
        """True when the (possibly ground) query has at least one answer."""
        return bool(self.ask(query, engine))

    def prove(self, query: str | Query) -> ProofTree | None:
        """A Figure 11-style proof tree for the query, or ``None``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove(parsed)

    def proofs(self, query: str | Query) -> list[tuple[dict[str, object], ProofTree]]:
        """All answers, each with a proof tree."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove_query(parsed)

    # ------------------------------------------------------------------
    def believed_cells(self, mode: str, level: str | None = None) -> list[CellRow]:
        """Cells believed in ``mode`` at ``level`` (default: own clearance)."""
        at = self.clearance if level is None else level
        if not self.lattice.leq(at, self.clearance):
            raise MultiLogError(
                f"no read-up: cannot ask for beliefs at {at!r} from clearance "
                f"{self.clearance!r}"
            )
        if mode not in self.modes:
            raise UnknownModeError(f"unknown belief mode {mode!r}; have {sorted(self.modes)}")
        if mode in BUILTIN_MODES:
            return self.engine.believed_cells(mode, at)
        rows = []
        for (pred, args), _round in self.engine.pfacts().items():
            if pred == "bel" and len(args) == 7 and args[5] == at and args[6] == mode:
                rows.append((args[0], args[1], args[2], args[3], args[4], at))
        return rows

    def cells(self) -> list[CellRow]:
        """Every m-cell derivable at this session's clearance."""
        return sorted(self.engine.cells(), key=repr)

    def check_consistency(self) -> ConsistencyReport:
        """Run the Definition 5.4 checks over ``[[Sigma]]``."""
        return check_consistency(self.database, self.context)

    def analyze(self):
        """Run the compile-time analyzer over this session's database.

        Returns the :class:`~repro.analysis.AnalysisReport` with every
        finding (safety, arity, stratification, security flows, dead
        code) at this session's clearance.  The pass runs under its own
        trace recorder, so ``last_trace()`` / ``:trace`` afterwards show
        the ``analyze`` span -- and the reductions it stratifies stay in
        the translate memo for the next ``ask``.
        """
        from repro.analysis import analyze_database

        self._revalidate()
        recorder = TraceRecorder()
        ctx = ObsContext(recorder, self._metrics)
        with _use_obs(ctx):
            report = analyze_database(self.database, self.clearance)
        self._finish_ask(recorder)
        return report

    def run_stored_queries(self, engine: str = "operational") -> list[tuple[Query, list[dict[str, object]]]]:
        """Answer every query stored in the database's Q component.

        Definition 5.1 makes queries part of the database
        ``<Lambda, Sigma, Pi, Q>``; this evaluates them all at the session
        clearance, in order.
        """
        return [
            (query, self.ask(query, engine=engine))
            for query in self.database.queries
        ]

    # ------------------------------------------------------------------
    def assert_clause(self, clause: str | Clause, strict: bool = False) -> None:
        """Atomically add a clause and invalidate the cached engines.

        The update is all-or-nothing: the clause is added on trial,
        validated (Definition 5.3 admissibility; with ``strict`` also the
        Definition 5.4 consistency checks), and only then journaled
        (append-and-fsync, when a journal is attached) and kept.  A
        rejected clause is retracted before the error propagates, leaving
        ``database.version``, every sibling session's caches and the
        journal exactly as they were -- ``ask()`` answers are
        byte-identical before and after a failed assert.

        Sibling sessions over the same database invalidate lazily via
        :meth:`_revalidate` (the shared ``database.version`` moved on).
        """
        parsed = parse_clause(clause) if isinstance(clause, str) else clause
        database = self.database
        database.add(parsed)
        try:
            context = check_admissibility(database)
            if strict:
                report = check_consistency(database, context)
                if not report.ok:
                    raise ConsistencyError(
                        "clause would make the database inconsistent "
                        "(Definition 5.4):\n" + "\n".join(report.all_messages()))
            if self.journal is not None:
                # Write-ahead: durable before acknowledged.  Validation
                # already passed, so replaying this record is always safe.
                self.journal.append_clause(str(parsed), database.version)
        except Exception:
            database.retract(parsed)
            raise
        self.context = context
        self._engine = None
        self._reduced = None
        self._cache_version = database.version
