"""The high-level MultiLog API: sessions bound to a clearance.

A :class:`MultiLogSession` wraps one database at one database level
(Definition 5.5) and exposes querying through either semantics:

>>> from repro.multilog import MultiLogSession
>>> session = MultiLogSession('''
...     level(u). level(s). order(u, s).
...     u[acct(alice : balance -u-> 100)].
...     s[acct(alice : balance -s-> 900)].
... ''', clearance="s")
>>> session.ask("s[acct(alice : balance -C-> B)] << cau")
[{'B': 900, 'C': 's'}]

Queries default to the operational engine; ``engine="reduction"`` runs
the same query through the tau translation and the Datalog back-end
(Theorem 6.1 says the answers agree -- the test suite checks it).

Every ``ask`` runs under an observation context: spans, per-rule firing
counts and cache hit rates are collected into :meth:`MultiLogSession.
last_stats` (cumulative counters, per-ask span tree).  An optional
:class:`~repro.obs.budget.EvaluationBudget` bounds each ask; overruns
raise :class:`~repro.errors.BudgetExceededError` with partial metrics
attached.

Sessions sharing one database stay coherent: cached engines are keyed on
``database.version``, so a sibling created by :meth:`with_clearance`
sees clauses asserted through any other session (the pre-fix behaviour
served stale answers from the sibling's cached engine).
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

from repro.datalog.storage import resolve_backend
from repro.datalog.terms import Constant
from repro.errors import (
    BudgetExceededError,
    ConsistencyError,
    MultiLogError,
    RecoveryError,
    ReproError,
    SessionBusyError,
    UnknownModeError,
)
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import Clause, LAtom, MultiLogDatabase, Query
from repro.multilog.consistency import ConsistencyReport, check_consistency
from repro.multilog.parser import parse_clause, parse_database, parse_query
from repro.multilog.proof import (
    BUILTIN_MODES,
    CellRow,
    OperationalEngine,
    ProofTree,
    Prover,
)
from repro.multilog.reduction import ReducedProgram, translate
from repro.obs.audit import AuditLog
from repro.obs.budget import EvaluationBudget
from repro.obs.context import ObsContext, current as _current_obs, use as _use_obs
from repro.obs.explain import explain_program
from repro.obs.histogram import HistogramSet
from repro.obs.metrics import EngineMetrics, MetricsCollector
from repro.obs.trace import NULL_RECORDER, TraceRecorder

#: Level injected when a program declares no lattice at all -- the
#: degenerate Datalog case of Proposition 6.1 ("perhaps system").
SYSTEM_LEVEL = "system"


class MultiLogSession:
    """One user's view of a MultiLog database at a fixed clearance."""

    def __init__(self, source: str | MultiLogDatabase, clearance: str | None = None,
                 budget: EvaluationBudget | None = None, lint: bool = False,
                 journal=None, backend: str | None = None):
        if isinstance(source, str):
            self.database = parse_database(source)
        else:
            self.database = source
        #: storage backend for the reduction engine's least model,
        #: resolved once at construction (explicit > ``MULTILOG_BACKEND``
        #: env var > ``dict``); ``columnar`` pairs with the vectorized
        #: evaluation strategy.  Answers are identical across backends.
        self.backend = resolve_backend(backend)
        if not self.database.lattice_clauses:
            self.database.add(Clause(LAtom(Constant(SYSTEM_LEVEL))))
        self.context: LatticeContext = check_admissibility(self.database)
        if clearance is None:
            tops = sorted(self.context.lattice.tops())
            if len(tops) != 1:
                raise MultiLogError(
                    "clearance not given and the lattice has no unique top; "
                    f"choose one of {tops}"
                )
            clearance = tops[0]
        self.clearance = self.context.lattice.check_level(clearance)
        #: per-ask limits; ``None`` means unbounded.
        self.budget = budget
        self._engine: OperationalEngine | None = None
        self._reduced: ReducedProgram | None = None
        #: database version the caches (engine, reduced, context) were
        #: built against; siblings over the same database compare it to
        #: spot mutations made through *other* sessions.
        self._cache_version = self.database.version
        self._metrics = MetricsCollector()
        self._last_recorder: TraceRecorder | None = None
        self._last_stats: EngineMetrics | None = None
        self._last_query: str | Query | None = None
        #: single-flight guard: a session is *not* reentrant -- ``ask``/
        #: ``assert_clause``/``analyze`` hold this for their whole run and
        #: a second concurrent entry raises :class:`SessionBusyError`
        #: instead of corrupting the first caller's per-ask state.
        #: Concurrent callers hold sessions exclusively (one sibling per
        #: worker, or the serving layer's pool checkout).
        self._flight_lock = threading.Lock()
        #: telemetry (off by default): latency histograms per span family,
        #: an optional streaming sink, and head-based trace sampling.
        self._histograms: HistogramSet | None = None
        self._sink = None
        self._sample_rate = 1.0
        self._sample_rng: random.Random | None = None
        #: security-audit trail (off by default; :meth:`enable_audit`).
        self._audit: AuditLog | None = None
        #: database version whose reduction model was last audit-walked.
        self._audited_model_version: int | None = None
        #: armed :class:`~repro.resilience.FaultPlan` (chaos testing); asks
        #: also honour a plan on the ambient ObsContext.
        self._fault_plan = None
        #: write-ahead journal; ``assert_clause`` appends-and-fsyncs here
        #: *after* validation, *before* acknowledging.
        self.journal = None
        #: Definition 5.4 report computed by :meth:`recover` (else ``None``).
        self.recovery_report: ConsistencyReport | None = None
        #: full journal-level :class:`~repro.resilience.RecoveryReport`
        #: from :meth:`recover` -- what replayed, what was quarantined.
        self.journal_recovery = None
        if journal is not None:
            self.attach_journal(journal)
        if lint:
            report = self.analyze()
            if not report.ok:
                from repro.errors import AnalysisError
                raise AnalysisError(report.render_text(), report)

    # ------------------------------------------------------------------
    @contextmanager
    def _single_flight(self, op: str):
        """Assert exclusive use of this session for the ``with`` body."""
        if not self._flight_lock.acquire(blocking=False):
            raise SessionBusyError(
                f"concurrent {op}() on one MultiLogSession: sessions are "
                "not reentrant; hold a session exclusively per caller "
                "(with_clearance() siblings, or a serving SessionPool)")
        try:
            yield
        finally:
            self._flight_lock.release()

    def _revalidate(self) -> None:
        """Drop cached engines when the shared database has moved on.

        ``assert_clause`` through any session over the same database
        bumps ``database.version``; comparing against the version our
        caches were built at keeps every sibling session coherent.

        Ordering matters: the stale caches are dropped *first* and the
        version is committed *last*, only after a fresh context is in
        place.  A failure mid-revalidation (inadmissible interleaved
        state, an injected fault in ``check_admissibility``) then leaves
        the session still marked stale -- the next ask retries the whole
        rebuild -- instead of a bumped ``_cache_version`` pinning an
        engine that was never rebuilt against the new database.
        """
        version = self.database.version
        if version != self._cache_version:
            self._engine = None
            self._reduced = None
            self.context = check_admissibility(self.database)
            self._cache_version = version

    @property
    def lattice(self):
        return self.context.lattice

    @property
    def engine(self) -> OperationalEngine:
        self._revalidate()
        if self._engine is None:
            self._engine = OperationalEngine(self.database, self.clearance, self.context)
        return self._engine

    @property
    def reduced(self) -> ReducedProgram:
        """The tau-translated Datalog program (Section 6), cached."""
        self._revalidate()
        if self._reduced is None:
            self._reduced = translate(self.database, self.clearance, self.context,
                                      backend=self.backend)
        return self._reduced

    @property
    def modes(self) -> frozenset[str]:
        return self.engine.modes

    def with_clearance(self, clearance: str) -> "MultiLogSession":
        """A sibling session over the same database at another level.

        The sibling shares the journal too: an assert through *any*
        session over this database must be as durable as through the one
        the journal was attached to.  The **resolved** storage backend is
        propagated explicitly as well -- a sibling must never re-resolve
        from the ``MULTILOG_BACKEND`` environment variable, or a pool of
        siblings could silently mix dict and columnar engines over one
        database when the environment changes between checkouts.
        """
        return MultiLogSession(self.database, clearance, budget=self.budget,
                               journal=self.journal, backend=self.backend)

    # ------------------------------------------------------------------
    def attach_journal(self, journal) -> None:
        """Start journaling this database's updates to ``journal``.

        ``journal`` is a :class:`~repro.resilience.SessionJournal` or a
        path.  A fresh (empty) journal is seeded with a snapshot of the
        current database, so recovery rebuilds the whole state, not just
        the clauses asserted after attachment.
        """
        from repro.resilience.journal import SessionJournal

        if not isinstance(journal, SessionJournal):
            journal = SessionJournal(journal)
        self.journal = journal
        if not journal.path.exists() or journal.path.stat().st_size == 0:
            journal.snapshot(self.database)

    @classmethod
    def recover(cls, path, clearance: str | None = None,
                budget: EvaluationBudget | None = None,
                require_consistent: bool = False,
                backend: str | None = None) -> "MultiLogSession":
        """Rebuild a session from a journal after a crash.

        Replays the journal (latest snapshot + subsequent clauses) and
        re-checks the paper's update guarantees on the recovered
        database: Definition 5.3 (admissibility) is enforced -- an
        inadmissible replay raises :class:`~repro.errors.RecoveryError`
        -- and the Definition 5.4 consistency checks are run and stored
        on the returned session as ``recovery_report``.  Consistency is
        *reported* rather than enforced by default because Def 5.4 is a
        property many valid databases never had (e.g. no key cells);
        ``require_consistent=True`` turns a failing report into a
        :class:`~repro.errors.RecoveryError` for callers whose database
        is supposed to stay consistent across crashes.  The returned
        session keeps journaling to the same file.

        A torn or corrupt journal *tail* (the residue of a crash
        mid-append) is quarantined into the journal's sidecar file and
        accounted in the session's ``journal_recovery``
        :class:`~repro.resilience.RecoveryReport` -- never silently
        dropped; corruption anywhere before intact records raises
        :class:`~repro.errors.JournalError`.
        """
        from repro.resilience.journal import SessionJournal

        journal = path if isinstance(path, SessionJournal) else SessionJournal(path)
        if not journal.path.exists():
            raise RecoveryError(f"no journal at {journal.path}")
        database, journal_report = journal.replay_with_report()
        try:
            # ``backend`` is propagated explicitly (not left to re-resolve
            # from ``MULTILOG_BACKEND`` at construction time) so a caller
            # recovering on behalf of an existing deployment -- the CLI's
            # ``recover --backend``, the serving layer -- gets the same
            # storage backend the crashed process ran on.
            session = cls(database, clearance, budget=budget, backend=backend)
        except ReproError as exc:
            raise RecoveryError(
                f"recovered database fails admissibility (Def 5.3): {exc}"
            ) from exc
        report = session.check_consistency()
        session.recovery_report = report
        journal_report.consistency = report
        session.journal_recovery = journal_report
        if require_consistent and not report.ok:
            raise RecoveryError(
                "recovered database fails consistency (Def 5.4):\n"
                + "\n".join(report.all_messages()), report)
        session.journal = journal
        return session

    # ------------------------------------------------------------------
    def arm_faults(self, plan) -> None:
        """Arm a :class:`~repro.resilience.FaultPlan` for this session's
        asks (chaos testing); :meth:`disarm_faults` removes it."""
        self._fault_plan = plan

    def disarm_faults(self) -> None:
        self._fault_plan = None

    # ------------------------------------------------------------------
    def ask(self, query: str | Query, engine: str = "operational") -> list[dict[str, object]]:
        """Answer a query; one ``{variable: value}`` dict per answer.

        Runs under a fresh trace recorder and this session's cumulative
        metrics collector; inspect the result with :meth:`last_stats` /
        :meth:`last_trace`.  When the session has a budget, an overrun
        raises :class:`~repro.errors.BudgetExceededError` carrying the
        partial :class:`~repro.obs.metrics.EngineMetrics`.

        Asks are **single-flight** per session: all per-ask state (the
        recorder, the query, the stats snapshot) lives in locals until
        :meth:`_finish_ask` publishes it, and a second caller entering
        concurrently raises :class:`~repro.errors.SessionBusyError`
        rather than racing the engine caches.
        """
        with self._single_flight("ask"):
            return self._ask_locked(query, engine)

    def _ask_locked(self, query: str | Query, engine: str) -> list[dict[str, object]]:
        if engine not in ("operational", "reduction"):
            raise MultiLogError(f"unknown engine {engine!r}; use 'operational' or 'reduction'")
        # Head-based sampling: decide before any span exists.  Unsampled
        # asks run under the null recorder (no span allocation at all) but
        # still feed the ``query`` latency family from a manual timer, so
        # the headline percentiles stay exact while per-phase families
        # come from the sampled traces only.
        sampled = True
        if self._sample_rate < 1.0:
            draw = (self._sample_rng.random() if self._sample_rng is not None
                    else random.random())
            sampled = draw < self._sample_rate
        # The ambient context is consulted for cross-cutting concerns the
        # caller threaded around the public signature: an armed fault
        # plan, and (serving) the request span this ask should parent
        # its trace under -- the server copies its contextvars into the
        # executor offload precisely so this read sees them.
        ambient = _current_obs()
        if sampled:
            recorder = TraceRecorder(histograms=self._histograms,
                                     sink=self._sink,
                                     parent=ambient.parent_span)
        else:
            recorder = NULL_RECORDER
        meter = self.budget.meter() if self.budget is not None else None
        faults = self._fault_plan if self._fault_plan is not None \
            else ambient.faults
        ctx = ObsContext(recorder, self._metrics, meter, faults, audit=self._audit)
        # ctx.recorder is the fault-wrapped view of ``recorder`` (identical
        # when no plan is armed): session-level spans must announce through
        # it so ``query``/``parse`` are injectable fault points too.
        spans = ctx.recorder
        self._metrics.count_ask()
        started = perf_counter() if self._histograms is not None else 0.0
        try:
            with _use_obs(ctx):
                with spans.span("query", engine=engine) as span:
                    with spans.span("parse"):
                        parsed = parse_query(query) if isinstance(query, str) else query
                    if engine == "operational":
                        answers = self.engine.solve(parsed)
                    else:
                        answers = self.reduced.query(parsed)
                        if ctx.audit.enabled:
                            self._audit_reduction_model(ctx.audit)
                    span.set(answers=len(answers))
        except BudgetExceededError as exc:
            self._finish_ask(recorder, query, budget_exceeded=exc.reason)
            exc.metrics = self._last_stats
            raise
        except Exception:
            # Any other failure (injected fault, engine error) must still
            # leave the partial forest renderable: the spans the exception
            # unwound through are already closed ``aborted=True``, so
            # snapshot them before propagating -- ``:trace`` and
            # ``last_trace()`` then show where the ask died.
            self._finish_ask(recorder, query)
            raise
        if self._histograms is not None and not sampled:
            self._histograms.observe("query", perf_counter() - started)
        self._finish_ask(recorder, query)
        return answers

    def _finish_ask(self, recorder, query: str | Query | None = None,
                    budget_exceeded: str | None = None) -> None:
        """Publish one ask's state onto the session, in one place.

        Per-ask state is ask-local until here; publishing it atomically
        at the end (success and every failure path) is what lets the
        single-flight guard make ``last_stats``/``last_trace``/
        ``explain()`` coherent for exclusive holders.
        """
        self._last_recorder = recorder
        if query is not None:
            self._last_query = query
        self._last_stats = self._metrics.snapshot(recorder, budget_exceeded=budget_exceeded)

    def _mark_degraded(self, rung: str, reason: str) -> None:
        """Stamp the most recent ask as degraded (resilience layer hook).

        Surfaces through :meth:`last_stats` (``degraded="rung:reason"``)
        and a ``degraded`` attribute on the ask's root span, so ``:stats``
        and ``:trace`` show that the answers came from a fallback rung or
        a budget-truncated run.
        """
        import dataclasses

        roots = getattr(self._last_recorder, "roots", None)
        if roots:
            roots[-1].set(degraded=True, rung=rung)
        if self._last_stats is not None:
            self._last_stats = dataclasses.replace(
                self._last_stats, degraded=f"{rung}:{reason}",
                spans=tuple(self._last_recorder.to_dicts())
                if self._last_recorder is not None else self._last_stats.spans)

    def _stamp_attempt(self, rung: str | None, attempt: int | None) -> None:
        """Tag the most recent stats snapshot with the *serving* attempt.

        The resilience executor calls this after a retry ladder settles,
        so ``:stats`` reports which rung and which attempt produced the
        answers instead of an anonymous merge of aborted tries.
        """
        import dataclasses

        if self._last_stats is not None:
            self._last_stats = dataclasses.replace(
                self._last_stats, rung=rung,
                attempt=attempt if attempt is not None else self._last_stats.attempt,
                retries=self._metrics.retries,
                fallbacks=self._metrics.fallbacks,
                degraded_asks=self._metrics.degraded_asks)

    def last_stats(self) -> EngineMetrics | None:
        """Metrics snapshot taken at the end of the most recent ask.

        Counters (firings, probes, rounds, asks) are cumulative across
        this session's lifetime; ``spans`` is the most recent ask's trace.
        ``None`` before the first ask.
        """
        return self._last_stats

    def last_trace(self) -> TraceRecorder | None:
        """The span recorder of the most recent ask (``None`` before one)."""
        return self._last_recorder

    # ------------------------------------------------------------------
    def enable_telemetry(self, sample_rate: float = 1.0, sink=None,
                         seed: int | None = None) -> HistogramSet:
        """Switch on latency histograms (and optionally a span sink).

        Every subsequent ask feeds per-span-family histograms readable via
        :attr:`histograms` / :meth:`metrics_text`.  ``sample_rate`` < 1
        enables head-based trace sampling: unsampled asks skip span
        allocation entirely (their ``query`` latency is still observed
        from a plain timer, so the headline percentiles stay exact).
        ``sink`` is a :class:`~repro.obs.export.TelemetrySink` receiving
        each sampled root span; ``seed`` makes the sampling decisions
        reproducible.
        """
        if not 0.0 <= sample_rate <= 1.0:
            raise MultiLogError(f"sample_rate must be in [0, 1], got {sample_rate!r}")
        if self._histograms is None:
            self._histograms = HistogramSet()
        self._sink = sink
        self._sample_rate = sample_rate
        self._sample_rng = random.Random(seed) if seed is not None else None
        return self._histograms

    @property
    def histograms(self) -> HistogramSet | None:
        """Per-span-family latency histograms (``None`` until enabled)."""
        return self._histograms

    def metrics_text(self) -> str:
        """This session's counters + histograms in Prometheus text format."""
        from repro.obs.export import render_prometheus

        stats = self._last_stats if self._last_stats is not None \
            else self._metrics.snapshot()
        return render_prometheus(stats, self._histograms)

    def enable_audit(self, log: AuditLog | None = None) -> AuditLog:
        """Switch on the MLS security-audit trail for subsequent asks.

        Returns the (idempotently created) :class:`~repro.obs.audit.
        AuditLog`; read it back with :meth:`audit_log`.  Pass ``log`` to
        share one trail across sessions -- the serving layer funnels every
        pooled session into a single server-wide AuditLog so leak checks
        see all clearances at once.  When the session was built by
        :meth:`recover`, the recovery itself is the first entry (kind
        ``recover``) so the trail starts at the journal replay, not at
        the first post-crash query.
        """
        if self._audit is None or (log is not None and log is not self._audit):
            self._audit = log if log is not None else AuditLog()
            if self.recovery_report is not None:
                self._audit.emit(
                    "recover", subject=str(self.clearance),
                    consistent=self.recovery_report.ok,
                    journal=str(self.journal.path) if self.journal is not None else "",
                )
        return self._audit

    def audit_log(self) -> AuditLog | None:
        """The session's audit trail (``None`` until :meth:`enable_audit`)."""
        return self._audit

    def _audit_reduction_model(self, audit: AuditLog) -> None:
        """Walk the reduced model's vis/outranked rows into the audit log.

        The reduction engine derives its cross-level reads as ordinary
        Datalog facts rather than through beta, so after a reduction ask
        we project the audit events straight off the fixpoint model.
        Guarded per database version: the model only changes when the
        database does, and the AuditLog dedups anyway.
        """
        if self._audited_model_version == self.database.version:
            return
        self._audited_model_version = self.database.version
        self.reduced.audit_model(audit)

    # ------------------------------------------------------------------
    def explain(self, query: str | Query | None = None,
                answer: dict[str, object] | None = None) -> str:
        """EXPLAIN the compiled plans, or a paper-style answer provenance.

        With no arguments: the reduced program's compiled join plans
        (unchanged behaviour).  With ``answer`` (and optionally
        ``query``, defaulting to the most recent ask): the provenance of
        that answer -- the Figure 9-11 rule chain, the believed base
        cells it rests on, and an indented proof sketch.  ``answer={}``
        explains every answer of the query.
        """
        if query is None and answer is None:
            return explain_program(self.reduced.program, backend=self.backend)
        from repro.obs.provenance import AnswerProvenance

        target = query if query is not None else self._last_query
        if target is None:
            raise MultiLogError("no query to explain: pass query= or ask first")
        parsed = parse_query(target) if isinstance(target, str) else target
        proofs = Prover(self.engine).prove_query(parsed)
        if not proofs:
            return f"no answers (and so no provenance) for {parsed}"
        provenances = [
            AnswerProvenance.from_proof(bindings, tree, query=str(parsed))
            for bindings, tree in proofs
        ]
        if answer:
            provenances = [p for p in provenances if p.matches(answer)]
            if not provenances:
                raise MultiLogError(
                    f"{answer!r} is not an answer of {parsed} "
                    f"(answers: {[bindings for bindings, _ in proofs]})")
        return "\n\n".join(p.render() for p in provenances)

    def holds(self, query: str | Query, engine: str = "operational") -> bool:
        """True when the (possibly ground) query has at least one answer."""
        return bool(self.ask(query, engine))

    def prove(self, query: str | Query) -> ProofTree | None:
        """A Figure 11-style proof tree for the query, or ``None``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove(parsed)

    def proofs(self, query: str | Query) -> list[tuple[dict[str, object], ProofTree]]:
        """All answers, each with a proof tree."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove_query(parsed)

    # ------------------------------------------------------------------
    def believed_cells(self, mode: str, level: str | None = None) -> list[CellRow]:
        """Cells believed in ``mode`` at ``level`` (default: own clearance)."""
        at = self.clearance if level is None else level
        if not self.lattice.leq(at, self.clearance):
            raise MultiLogError(
                f"no read-up: cannot ask for beliefs at {at!r} from clearance "
                f"{self.clearance!r}"
            )
        if mode not in self.modes:
            raise UnknownModeError(f"unknown belief mode {mode!r}; have {sorted(self.modes)}")
        if mode in BUILTIN_MODES:
            return self.engine.believed_cells(mode, at)
        rows = []
        for (pred, args), _round in self.engine.pfacts().items():
            if pred == "bel" and len(args) == 7 and args[5] == at and args[6] == mode:
                rows.append((args[0], args[1], args[2], args[3], args[4], at))
        return rows

    def cells(self) -> list[CellRow]:
        """Every m-cell derivable at this session's clearance."""
        return sorted(self.engine.cells(), key=repr)

    def check_consistency(self) -> ConsistencyReport:
        """Run the Definition 5.4 checks over ``[[Sigma]]``."""
        return check_consistency(self.database, self.context)

    def analyze(self):
        """Run the compile-time analyzer over this session's database.

        Returns the :class:`~repro.analysis.AnalysisReport` with every
        finding (safety, arity, stratification, security flows, dead
        code) at this session's clearance.  The pass runs under its own
        trace recorder, so ``last_trace()`` / ``:trace`` afterwards show
        the ``analyze`` span -- and the reductions it stratifies stay in
        the translate memo for the next ``ask``.
        """
        from repro.analysis import analyze_database

        with self._single_flight("analyze"):
            self._revalidate()
            recorder = TraceRecorder(histograms=self._histograms, sink=self._sink)
            ctx = ObsContext(recorder, self._metrics, audit=self._audit)
            with _use_obs(ctx):
                report = analyze_database(self.database, self.clearance)
            self._finish_ask(recorder)
            return report

    def run_stored_queries(self, engine: str = "operational") -> list[tuple[Query, list[dict[str, object]]]]:
        """Answer every query stored in the database's Q component.

        Definition 5.1 makes queries part of the database
        ``<Lambda, Sigma, Pi, Q>``; this evaluates them all at the session
        clearance, in order.
        """
        return [
            (query, self.ask(query, engine=engine))
            for query in self.database.queries
        ]

    # ------------------------------------------------------------------
    def assert_clause(self, clause: str | Clause, strict: bool = False) -> None:
        """Atomically add a clause and invalidate the cached engines.

        The update is all-or-nothing: the clause is added on trial,
        validated (Definition 5.3 admissibility; with ``strict`` also the
        Definition 5.4 consistency checks), and only then journaled
        (append-and-fsync, when a journal is attached) and kept.  A
        rejected clause is retracted before the error propagates, leaving
        ``database.version``, every sibling session's caches and the
        journal exactly as they were -- ``ask()`` answers are
        byte-identical before and after a failed assert.

        Sibling sessions over the same database invalidate lazily via
        :meth:`_revalidate` (the shared ``database.version`` moved on).

        Like :meth:`ask`, single-flight per session: concurrent writers
        must serialize (the serving layer holds a global write lock);
        a second entry raises :class:`~repro.errors.SessionBusyError`.
        """
        with self._single_flight("assert_clause"):
            self._assert_clause_locked(clause, strict)

    def _assert_clause_locked(self, clause: str | Clause, strict: bool) -> None:
        parsed = parse_clause(clause) if isinstance(clause, str) else clause
        database = self.database
        database.add(parsed)
        try:
            context = check_admissibility(database)
            if strict:
                report = check_consistency(database, context)
                if not report.ok:
                    raise ConsistencyError(
                        "clause would make the database inconsistent "
                        "(Definition 5.4):\n" + "\n".join(report.all_messages()))
            if self.journal is not None:
                # Write-ahead: durable before acknowledged.  Validation
                # already passed, so replaying this record is always safe.
                self.journal.append_clause(str(parsed), database.version)
        except Exception:
            database.retract(parsed)
            raise
        self.context = context
        self._engine = None
        self._reduced = None
        self._cache_version = database.version
        if self._audit is not None:
            head = parsed.head
            level = getattr(head, "level", None)
            subject = str(level.value) if isinstance(level, Constant) else str(self.clearance)
            pred = getattr(head, "pred", None) or type(head).__name__
            self._audit.emit("assert", subject=subject, predicate=str(pred),
                             clause=str(parsed), version=database.version)
