"""The high-level MultiLog API: sessions bound to a clearance.

A :class:`MultiLogSession` wraps one database at one database level
(Definition 5.5) and exposes querying through either semantics:

>>> from repro.multilog import MultiLogSession
>>> session = MultiLogSession('''
...     level(u). level(s). order(u, s).
...     u[acct(alice : balance -u-> 100)].
...     s[acct(alice : balance -s-> 900)].
... ''', clearance="s")
>>> session.ask("s[acct(alice : balance -C-> B)] << cau")
[{'B': 900, 'C': 's'}]

Queries default to the operational engine; ``engine="reduction"`` runs
the same query through the tau translation and the Datalog back-end
(Theorem 6.1 says the answers agree -- the test suite checks it).

Every ``ask`` runs under an observation context: spans, per-rule firing
counts and cache hit rates are collected into :meth:`MultiLogSession.
last_stats` (cumulative counters, per-ask span tree).  An optional
:class:`~repro.obs.budget.EvaluationBudget` bounds each ask; overruns
raise :class:`~repro.errors.BudgetExceededError` with partial metrics
attached.

Sessions sharing one database stay coherent: cached engines are keyed on
``database.version``, so a sibling created by :meth:`with_clearance`
sees clauses asserted through any other session (the pre-fix behaviour
served stale answers from the sibling's cached engine).
"""

from __future__ import annotations

from repro.datalog.terms import Constant
from repro.errors import BudgetExceededError, MultiLogError, UnknownModeError
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import Clause, LAtom, MultiLogDatabase, Query
from repro.multilog.consistency import ConsistencyReport, check_consistency
from repro.multilog.parser import parse_clause, parse_database, parse_query
from repro.multilog.proof import (
    BUILTIN_MODES,
    CellRow,
    OperationalEngine,
    ProofTree,
    Prover,
)
from repro.multilog.reduction import ReducedProgram, translate
from repro.obs.budget import EvaluationBudget
from repro.obs.context import ObsContext, use as _use_obs
from repro.obs.explain import explain_program
from repro.obs.metrics import EngineMetrics, MetricsCollector
from repro.obs.trace import TraceRecorder

#: Level injected when a program declares no lattice at all -- the
#: degenerate Datalog case of Proposition 6.1 ("perhaps system").
SYSTEM_LEVEL = "system"


class MultiLogSession:
    """One user's view of a MultiLog database at a fixed clearance."""

    def __init__(self, source: str | MultiLogDatabase, clearance: str | None = None,
                 budget: EvaluationBudget | None = None, lint: bool = False):
        if isinstance(source, str):
            self.database = parse_database(source)
        else:
            self.database = source
        if not self.database.lattice_clauses:
            self.database.add(Clause(LAtom(Constant(SYSTEM_LEVEL))))
        self.context: LatticeContext = check_admissibility(self.database)
        if clearance is None:
            tops = sorted(self.context.lattice.tops())
            if len(tops) != 1:
                raise MultiLogError(
                    "clearance not given and the lattice has no unique top; "
                    f"choose one of {tops}"
                )
            clearance = tops[0]
        self.clearance = self.context.lattice.check_level(clearance)
        #: per-ask limits; ``None`` means unbounded.
        self.budget = budget
        self._engine: OperationalEngine | None = None
        self._reduced: ReducedProgram | None = None
        #: database version the caches (engine, reduced, context) were
        #: built against; siblings over the same database compare it to
        #: spot mutations made through *other* sessions.
        self._cache_version = self.database.version
        self._metrics = MetricsCollector()
        self._last_recorder: TraceRecorder | None = None
        self._last_stats: EngineMetrics | None = None
        if lint:
            report = self.analyze()
            if not report.ok:
                from repro.errors import AnalysisError
                raise AnalysisError(report.render_text(), report)

    # ------------------------------------------------------------------
    def _revalidate(self) -> None:
        """Drop cached engines when the shared database has moved on.

        ``assert_clause`` through any session over the same database
        bumps ``database.version``; comparing against the version our
        caches were built at keeps every sibling session coherent.
        """
        version = self.database.version
        if version != self._cache_version:
            self.context = check_admissibility(self.database)
            self._engine = None
            self._reduced = None
            self._cache_version = version

    @property
    def lattice(self):
        return self.context.lattice

    @property
    def engine(self) -> OperationalEngine:
        self._revalidate()
        if self._engine is None:
            self._engine = OperationalEngine(self.database, self.clearance, self.context)
        return self._engine

    @property
    def reduced(self) -> ReducedProgram:
        """The tau-translated Datalog program (Section 6), cached."""
        self._revalidate()
        if self._reduced is None:
            self._reduced = translate(self.database, self.clearance, self.context)
        return self._reduced

    @property
    def modes(self) -> frozenset[str]:
        return self.engine.modes

    def with_clearance(self, clearance: str) -> "MultiLogSession":
        """A sibling session over the same database at another level."""
        return MultiLogSession(self.database, clearance, budget=self.budget)

    # ------------------------------------------------------------------
    def ask(self, query: str | Query, engine: str = "operational") -> list[dict[str, object]]:
        """Answer a query; one ``{variable: value}`` dict per answer.

        Runs under a fresh trace recorder and this session's cumulative
        metrics collector; inspect the result with :meth:`last_stats` /
        :meth:`last_trace`.  When the session has a budget, an overrun
        raises :class:`~repro.errors.BudgetExceededError` carrying the
        partial :class:`~repro.obs.metrics.EngineMetrics`.
        """
        if engine not in ("operational", "reduction"):
            raise MultiLogError(f"unknown engine {engine!r}; use 'operational' or 'reduction'")
        recorder = TraceRecorder()
        meter = self.budget.meter() if self.budget is not None else None
        ctx = ObsContext(recorder, self._metrics, meter)
        self._metrics.count_ask()
        try:
            with _use_obs(ctx):
                with recorder.span("query", engine=engine) as span:
                    with recorder.span("parse"):
                        parsed = parse_query(query) if isinstance(query, str) else query
                    if engine == "operational":
                        answers = self.engine.solve(parsed)
                    else:
                        answers = self.reduced.query(parsed)
                    span.set(answers=len(answers))
        except BudgetExceededError as exc:
            self._finish_ask(recorder, budget_exceeded=exc.reason)
            exc.metrics = self._last_stats
            raise
        self._finish_ask(recorder)
        return answers

    def _finish_ask(self, recorder: TraceRecorder,
                    budget_exceeded: str | None = None) -> None:
        self._last_recorder = recorder
        self._last_stats = self._metrics.snapshot(recorder, budget_exceeded=budget_exceeded)

    def last_stats(self) -> EngineMetrics | None:
        """Metrics snapshot taken at the end of the most recent ask.

        Counters (firings, probes, rounds, asks) are cumulative across
        this session's lifetime; ``spans`` is the most recent ask's trace.
        ``None`` before the first ask.
        """
        return self._last_stats

    def last_trace(self) -> TraceRecorder | None:
        """The span recorder of the most recent ask (``None`` before one)."""
        return self._last_recorder

    def explain(self) -> str:
        """An EXPLAIN dump of the reduced program's compiled join plans."""
        return explain_program(self.reduced.program)

    def holds(self, query: str | Query, engine: str = "operational") -> bool:
        """True when the (possibly ground) query has at least one answer."""
        return bool(self.ask(query, engine))

    def prove(self, query: str | Query) -> ProofTree | None:
        """A Figure 11-style proof tree for the query, or ``None``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove(parsed)

    def proofs(self, query: str | Query) -> list[tuple[dict[str, object], ProofTree]]:
        """All answers, each with a proof tree."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove_query(parsed)

    # ------------------------------------------------------------------
    def believed_cells(self, mode: str, level: str | None = None) -> list[CellRow]:
        """Cells believed in ``mode`` at ``level`` (default: own clearance)."""
        at = self.clearance if level is None else level
        if not self.lattice.leq(at, self.clearance):
            raise MultiLogError(
                f"no read-up: cannot ask for beliefs at {at!r} from clearance "
                f"{self.clearance!r}"
            )
        if mode not in self.modes:
            raise UnknownModeError(f"unknown belief mode {mode!r}; have {sorted(self.modes)}")
        if mode in BUILTIN_MODES:
            return self.engine.believed_cells(mode, at)
        rows = []
        for (pred, args), _round in self.engine.pfacts().items():
            if pred == "bel" and len(args) == 7 and args[5] == at and args[6] == mode:
                rows.append((args[0], args[1], args[2], args[3], args[4], at))
        return rows

    def cells(self) -> list[CellRow]:
        """Every m-cell derivable at this session's clearance."""
        return sorted(self.engine.cells(), key=repr)

    def check_consistency(self) -> ConsistencyReport:
        """Run the Definition 5.4 checks over ``[[Sigma]]``."""
        return check_consistency(self.database, self.context)

    def analyze(self):
        """Run the compile-time analyzer over this session's database.

        Returns the :class:`~repro.analysis.AnalysisReport` with every
        finding (safety, arity, stratification, security flows, dead
        code) at this session's clearance.  The pass runs under its own
        trace recorder, so ``last_trace()`` / ``:trace`` afterwards show
        the ``analyze`` span -- and the reductions it stratifies stay in
        the translate memo for the next ``ask``.
        """
        from repro.analysis import analyze_database

        self._revalidate()
        recorder = TraceRecorder()
        ctx = ObsContext(recorder, self._metrics)
        with _use_obs(ctx):
            report = analyze_database(self.database, self.clearance)
        self._finish_ask(recorder)
        return report

    def run_stored_queries(self, engine: str = "operational") -> list[tuple[Query, list[dict[str, object]]]]:
        """Answer every query stored in the database's Q component.

        Definition 5.1 makes queries part of the database
        ``<Lambda, Sigma, Pi, Q>``; this evaluates them all at the session
        clearance, in order.
        """
        return [
            (query, self.ask(query, engine=engine))
            for query in self.database.queries
        ]

    # ------------------------------------------------------------------
    def assert_clause(self, clause: str | Clause) -> None:
        """Add a clause and invalidate the cached engines.

        Sibling sessions over the same database invalidate lazily via
        :meth:`_revalidate` (the shared ``database.version`` moved on).
        """
        parsed = parse_clause(clause) if isinstance(clause, str) else clause
        self.database.add(parsed)
        self.context = check_admissibility(self.database)
        self._engine = None
        self._reduced = None
        self._cache_version = self.database.version
