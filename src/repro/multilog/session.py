"""The high-level MultiLog API: sessions bound to a clearance.

A :class:`MultiLogSession` wraps one database at one database level
(Definition 5.5) and exposes querying through either semantics:

>>> from repro.multilog import MultiLogSession
>>> session = MultiLogSession('''
...     level(u). level(s). order(u, s).
...     u[acct(alice : balance -u-> 100)].
...     s[acct(alice : balance -s-> 900)].
... ''', clearance="s")
>>> session.ask("s[acct(alice : balance -C-> B)] << cau")
[{'B': 900, 'C': 's'}]

Queries default to the operational engine; ``engine="reduction"`` runs
the same query through the tau translation and the Datalog back-end
(Theorem 6.1 says the answers agree -- the test suite checks it).
"""

from __future__ import annotations

from repro.datalog.terms import Constant
from repro.errors import MultiLogError, UnknownModeError
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import Clause, LAtom, MultiLogDatabase, Query
from repro.multilog.consistency import ConsistencyReport, check_consistency
from repro.multilog.parser import parse_clause, parse_database, parse_query
from repro.multilog.proof import (
    BUILTIN_MODES,
    CellRow,
    OperationalEngine,
    ProofTree,
    Prover,
)
from repro.multilog.reduction import ReducedProgram, translate

#: Level injected when a program declares no lattice at all -- the
#: degenerate Datalog case of Proposition 6.1 ("perhaps system").
SYSTEM_LEVEL = "system"


class MultiLogSession:
    """One user's view of a MultiLog database at a fixed clearance."""

    def __init__(self, source: str | MultiLogDatabase, clearance: str | None = None):
        if isinstance(source, str):
            self.database = parse_database(source)
        else:
            self.database = source
        if not self.database.lattice_clauses:
            self.database.add(Clause(LAtom(Constant(SYSTEM_LEVEL))))
        self.context: LatticeContext = check_admissibility(self.database)
        if clearance is None:
            tops = sorted(self.context.lattice.tops())
            if len(tops) != 1:
                raise MultiLogError(
                    "clearance not given and the lattice has no unique top; "
                    f"choose one of {tops}"
                )
            clearance = tops[0]
        self.clearance = self.context.lattice.check_level(clearance)
        self._engine: OperationalEngine | None = None
        self._reduced: ReducedProgram | None = None

    # ------------------------------------------------------------------
    @property
    def lattice(self):
        return self.context.lattice

    @property
    def engine(self) -> OperationalEngine:
        if self._engine is None:
            self._engine = OperationalEngine(self.database, self.clearance, self.context)
        return self._engine

    @property
    def reduced(self) -> ReducedProgram:
        """The tau-translated Datalog program (Section 6), cached."""
        if self._reduced is None:
            self._reduced = translate(self.database, self.clearance, self.context)
        return self._reduced

    @property
    def modes(self) -> frozenset[str]:
        return self.engine.modes

    def with_clearance(self, clearance: str) -> "MultiLogSession":
        """A sibling session over the same database at another level."""
        return MultiLogSession(self.database, clearance)

    # ------------------------------------------------------------------
    def ask(self, query: str | Query, engine: str = "operational") -> list[dict[str, object]]:
        """Answer a query; one ``{variable: value}`` dict per answer."""
        parsed = parse_query(query) if isinstance(query, str) else query
        if engine == "operational":
            return self.engine.solve(parsed)
        if engine == "reduction":
            return self.reduced.query(parsed)
        raise MultiLogError(f"unknown engine {engine!r}; use 'operational' or 'reduction'")

    def holds(self, query: str | Query, engine: str = "operational") -> bool:
        """True when the (possibly ground) query has at least one answer."""
        return bool(self.ask(query, engine))

    def prove(self, query: str | Query) -> ProofTree | None:
        """A Figure 11-style proof tree for the query, or ``None``."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove(parsed)

    def proofs(self, query: str | Query) -> list[tuple[dict[str, object], ProofTree]]:
        """All answers, each with a proof tree."""
        parsed = parse_query(query) if isinstance(query, str) else query
        return Prover(self.engine).prove_query(parsed)

    # ------------------------------------------------------------------
    def believed_cells(self, mode: str, level: str | None = None) -> list[CellRow]:
        """Cells believed in ``mode`` at ``level`` (default: own clearance)."""
        at = self.clearance if level is None else level
        if not self.lattice.leq(at, self.clearance):
            raise MultiLogError(
                f"no read-up: cannot ask for beliefs at {at!r} from clearance "
                f"{self.clearance!r}"
            )
        if mode not in self.modes:
            raise UnknownModeError(f"unknown belief mode {mode!r}; have {sorted(self.modes)}")
        if mode in BUILTIN_MODES:
            return self.engine.believed_cells(mode, at)
        rows = []
        for (pred, args), _round in self.engine.pfacts().items():
            if pred == "bel" and len(args) == 7 and args[5] == at and args[6] == mode:
                rows.append((args[0], args[1], args[2], args[3], args[4], at))
        return rows

    def cells(self) -> list[CellRow]:
        """Every m-cell derivable at this session's clearance."""
        return sorted(self.engine.cells(), key=repr)

    def check_consistency(self) -> ConsistencyReport:
        """Run the Definition 5.4 checks over ``[[Sigma]]``."""
        return check_consistency(self.database, self.context)

    def run_stored_queries(self, engine: str = "operational") -> list[tuple[Query, list[dict[str, object]]]]:
        """Answer every query stored in the database's Q component.

        Definition 5.1 makes queries part of the database
        ``<Lambda, Sigma, Pi, Q>``; this evaluates them all at the session
        clearance, in order.
        """
        return [
            (query, self.ask(query, engine=engine))
            for query in self.database.queries
        ]

    # ------------------------------------------------------------------
    def assert_clause(self, clause: str | Clause) -> None:
        """Add a clause and invalidate the cached engines."""
        parsed = parse_clause(clause) if isinstance(clause, str) else clause
        self.database.add(parsed)
        self.context = check_admissibility(self.database)
        self._engine = None
        self._reduced = None
