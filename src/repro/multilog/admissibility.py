"""Admissibility of MultiLog databases (Definition 5.3).

A database ``<Lambda, Sigma, Pi, Q>`` is admissible when:

1. every Lambda clause's dependency graph stays inside l-/h-atoms (the
   lattice must be self-contained -- its meaning cannot depend on secured
   data or plain predicates);
2. every security label appearing in a Sigma clause is asserted by
   ``[[Lambda]]``;
3. ``[[Lambda]]`` induces a partial order on the declared levels.

``[[Lambda]]`` is computed by translating the l-/h-clauses to Datalog and
taking the least model (Lambda clauses may have bodies, e.g. mirrored
orders), then materialized as a :class:`~repro.lattice.SecurityLattice`
-- whose constructor rejects cycles, giving condition 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog import Atom as DAtom
from repro.datalog import Literal as DLiteral
from repro.datalog import Program, Rule, evaluate
from repro.datalog.terms import Constant
from repro.errors import AdmissibilityError, LatticeError
from repro.lattice import SecurityLattice
from repro.multilog.ast import (
    BAtom,
    BMolecule,
    Clause,
    HAtom,
    LAtom,
    MAtom,
    MMolecule,
    MultiLogDatabase,
)


@dataclass(frozen=True)
class LatticeContext:
    """The materialized meaning of Lambda: levels, order facts, the lattice."""

    lattice: SecurityLattice
    level_rows: frozenset[tuple[object, ...]]
    order_rows: frozenset[tuple[object, ...]]


def _lambda_to_datalog(clauses: list[Clause]) -> Program:
    program = Program()
    for clause in clauses:
        head = clause.head
        if isinstance(head, LAtom):
            head_atom = DAtom("level", (head.level,))
        elif isinstance(head, HAtom):
            head_atom = DAtom("order", (head.low, head.high))
        else:  # unreachable: MultiLogDatabase.add files by head kind
            raise AdmissibilityError(f"clause {clause} is not an l- or h-clause")
        body = []
        for atom in clause.body:
            if isinstance(atom, LAtom):
                body.append(DLiteral(DAtom("level", (atom.level,))))
            elif isinstance(atom, HAtom):
                body.append(DLiteral(DAtom("order", (atom.low, atom.high))))
            else:
                raise AdmissibilityError(
                    f"Lambda clause {clause} depends on a non-lattice atom {atom} "
                    "(Definition 5.3, condition 1)"
                )
        program.add_rule(Rule(head_atom, tuple(body)))
    return program


def _labels_used_in_sigma(db: MultiLogDatabase) -> set[str]:
    """Every ground security label occurring in a Sigma clause."""
    labels: set[str] = set()

    def collect_matom(atom: MAtom) -> None:
        for t in (atom.level, atom.cls):
            if isinstance(t, Constant):
                labels.add(str(t.value))

    for clause in db.secured_clauses:
        atoms: list[object] = [clause.head, *clause.body]
        for atom in atoms:
            if isinstance(atom, MAtom):
                collect_matom(atom)
            elif isinstance(atom, MMolecule):
                for component in atom.atoms():
                    collect_matom(component)
            elif isinstance(atom, BAtom):
                collect_matom(atom.matom)
            elif isinstance(atom, BMolecule):
                for component in atom.molecule.atoms():
                    collect_matom(component)
    return labels


def lambda_meaning(db: MultiLogDatabase) -> LatticeContext:
    """Compute ``[[Lambda]]`` and materialize the security lattice."""
    program = _lambda_to_datalog(db.lattice_clauses)
    model = evaluate(program)
    level_rows = frozenset(model.rows("level"))
    order_rows = frozenset(model.rows("order"))
    levels = {str(row[0]) for row in level_rows}
    orders = [(str(row[0]), str(row[1])) for row in order_rows]
    undeclared = {lo for lo, _hi in orders} | {hi for _lo, hi in orders}
    missing = undeclared - levels
    if missing:
        raise AdmissibilityError(
            f"order/2 references undeclared level(s) {sorted(missing)}"
        )
    try:
        lattice = SecurityLattice(levels, orders)
    except LatticeError as exc:
        raise AdmissibilityError(
            f"[[Lambda]] does not define a partial order: {exc}"
        ) from exc
    return LatticeContext(lattice, level_rows, order_rows)


def check_admissibility(db: MultiLogDatabase) -> LatticeContext:
    """Definition 5.3; returns the lattice context on success."""
    context = lambda_meaning(db)
    used = _labels_used_in_sigma(db)
    undeclared = used - context.lattice.levels
    if undeclared:
        raise AdmissibilityError(
            f"Sigma uses security label(s) {sorted(undeclared)} not asserted by "
            "[[Lambda]] (Definition 5.3, condition 2)"
        )
    return context


def is_admissible(db: MultiLogDatabase) -> bool:
    """Predicate form of :func:`check_admissibility`."""
    try:
        check_admissibility(db)
    except AdmissibilityError:
        return False
    return True
