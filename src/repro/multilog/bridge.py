"""Bridging MLS relations and MultiLog databases (Example 5.1).

Both directions are supported:

* :func:`relation_to_multilog` encodes an :class:`~repro.mls.MLSRelation`
  as a MultiLog database -- one m-molecule per stored tuple, plus the
  l-/h-clauses of the relation's lattice.
* :func:`cells_to_relation` re-assembles derived/believed cells into an
  MLS relation.  Cell granularity loses tuple boundaries (two same-key
  molecules at one level merge), so when the originating database is
  available its molecule facts are used to recover the boundaries --
  the same device :mod:`repro.multilog.consistency` uses.

:func:`believed_relation` closes the loop: the cell-level MultiLog
beliefs re-assembled as relations, cross-checked against the tuple-level
beta in ``tests/multilog/test_bridge.py``.
"""

from __future__ import annotations

from repro.datalog.terms import Constant
from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.schema import MLSchema
from repro.mls.tuples import NULL, Cell, MLSTuple
from repro.multilog.ast import (
    NULL_VALUE,
    Clause,
    HAtom,
    LAtom,
    MMolecule,
    MultiLogDatabase,
)
from repro.multilog.proof import CellRow, OperationalEngine


def _encode_value(value: object) -> object:
    return NULL_VALUE if value is NULL else value


def _decode_value(value: object) -> object:
    return NULL if value == NULL_VALUE else value


def relation_to_multilog(relation: MLSRelation) -> MultiLogDatabase:
    """Encode a multilevel relation as a MultiLog database.

    The apparent key value serves as the molecule key ``k``; every
    attribute (including the key attribute itself, satisfying the
    ``s[p(k : a -c-> k)]`` requirement of Section 5.1) becomes one
    labelled arrow.
    """
    db = MultiLogDatabase()
    lattice = relation.schema.lattice
    clauses = [Clause(LAtom(Constant(level)))
               for level in sorted(lattice.levels)]
    clauses.extend(Clause(HAtom(Constant(low), Constant(high)))
                   for low, high in sorted(lattice.cover_pairs))
    if len(relation.schema.key) != 1:
        raise ValueError(
            "relation_to_multilog expects a single-attribute apparent key; "
            "encode multi-attribute keys as value tuples first"
        )
    for t in relation:
        key_value = t.key_values()[0]
        assignments = tuple(
            (attr, Constant(t.cls(attr)), Constant(_encode_value(t.value(attr))))
            for attr in relation.schema.attributes
        )
        molecule = MMolecule(
            Constant(t.tc), relation.schema.name, Constant(_encode_value(key_value)),
            assignments,
        )
        clauses.append(Clause(molecule))
    db.add_clauses(clauses)  # bulk load: one version bump
    return db


def _tuple_from_cells(cells: list[CellRow], schema: MLSchema, tc: Level) -> MLSTuple:
    """Assemble one MLS tuple from one molecule's cells (null-filling)."""
    by_attr = {cell[2]: cell for cell in cells}
    key_attr = schema.key[0]
    key_cell = by_attr.get(key_attr)
    key_cls = key_cell[4] if key_cell is not None else cells[0][4]
    tuple_cells: dict[str, Cell] = {}
    for attr in schema.attributes:
        cell = by_attr.get(attr)
        if cell is None:
            tuple_cells[attr] = Cell(NULL, key_cls)
        else:
            tuple_cells[attr] = Cell(_decode_value(cell[3]), cell[4])
    return MLSTuple(schema, tuple_cells, tc=tc)


def cells_to_relation(cells: list[CellRow], schema: MLSchema,
                      tc: Level | None = None,
                      group_by_level: bool = True,
                      db: MultiLogDatabase | None = None) -> MLSRelation:
    """Re-assemble cells into an MLS relation.

    Grouping:

    * with ``db`` -- the database's ground molecule facts recover tuple
      boundaries exactly (remaining rule-derived cells group by
      ``(key, level)``);
    * otherwise by ``(key, source level)``, or by key alone when
      ``group_by_level`` is false (the shape of a cautious view, where a
      single merged tuple per key remains).

    ``tc`` overrides the tuple class (beta stamps the believing level).
    """
    relevant = [cell for cell in cells if cell[0] == schema.name]
    relation = MLSRelation(schema)
    if db is not None:
        from repro.multilog.consistency import molecules  # deferred: cycle

        for molecule in molecules(set(relevant), db):
            tuple_tc = tc if tc is not None else molecule.level
            relation.add(_tuple_from_cells(list(molecule.cells), schema, tuple_tc))
        return relation
    groups: dict[tuple, list[CellRow]] = {}
    for cell in relevant:
        group_key = (cell[1], cell[5]) if group_by_level else (cell[1],)
        groups.setdefault(group_key, []).append(cell)
    for group_key, group in sorted(groups.items(), key=repr):
        if group_by_level:
            tuple_tc = tc if tc is not None else group_key[1]
        else:
            tuple_tc = tc if tc is not None else group[0][4]
        relation.add(_tuple_from_cells(group, schema, tuple_tc))
    return relation


def believed_relation(engine: OperationalEngine, mode: str, level: Level,
                      schema: MLSchema) -> MLSRelation:
    """The believed view at ``level`` as a relation (tuple re-assembly).

    Firm and optimistic beliefs select whole molecules (every cell of a
    visible molecule is believed), so tuple boundaries are recovered from
    the database; firm keeps source tuple classes, optimistic restamps to
    the believing level exactly as beta does.  Cautious cells merge into
    one tuple per key (inheritance with overriding already happened
    cell-wise).
    """
    cells = list(engine.believed_cells(mode, level))
    if mode == "cau":
        return cells_to_relation(cells, schema, tc=level, group_by_level=False)
    stamp = level if mode == "opt" else None
    return cells_to_relation(cells, schema, tc=stamp, db=engine.db)
