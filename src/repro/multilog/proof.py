"""Operational semantics of MultiLog (Sections 5.2-5.4, Figures 9 and 11).

Two cooperating pieces:

* :class:`OperationalEngine` -- materializes everything derivable under
  ``<Delta, u>``: the set of m-cells (ground columns) and plain facts.
  Derivability is the least fixpoint of the proof rules; belief atoms in
  clause bodies are non-monotonic (cautious belief involves "no dominating
  cell"), so the engine runs an *alternating* fixpoint: an inner monotone
  round derives cells with b-atoms frozen against the previous round's
  cells, and outer rounds repeat until the cell set stabilizes.  Programs
  whose belief recursion is level-acyclic (every example in the paper)
  converge in at most ``|S| + 1`` outer rounds; oscillation raises
  :class:`~repro.errors.BeliefRecursionError` -- the operational analogue
  of recursion through negation.

* :class:`Prover` -- reconstructs sequent-style proof trees (Figure 11)
  for provable goals, with nodes named after the Figure 9 rules: EMPTY,
  AND, DEDUCTION-G, DEDUCTION-G', BELIEF, DEDUCTION-B, DESCEND-O,
  DESCEND-C1..C4, REFLEXIVITY, TRANSITIVITY, plus USER-BELIEF (Figure
  13).  Well-foundedness of the reconstruction is guaranteed by the
  derivation round recorded for every materialized fact: an explanation
  only recurses into strictly earlier rounds.

Bell-LaPadula is enforced exactly where the paper puts it: m-atom and
b-atom provability is guarded by ``level <= u`` and ``cls <= u``
(DEDUCTION-G' / BELIEF, and the ``lambda`` encoding of Section 6.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

from repro.datalog.engine import MAX_ROUND_SPANS
from repro.datalog.terms import Constant, Term
from repro.datalog.unify import Substitution, unify_terms, walk
from repro.errors import BeliefRecursionError, MultiLogError, UnknownModeError
from repro.obs.context import current as _current_obs
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_SPAN
from repro.lattice import SecurityLattice
from repro.multilog.admissibility import LatticeContext, check_admissibility
from repro.multilog.ast import (
    BAtom,
    BMolecule,
    BodyAtom,
    Clause,
    HAtom,
    LAtom,
    LeqGoal,
    MAtom,
    MMolecule,
    MultiLogDatabase,
    PAtom,
    Query,
)

#: A ground m-cell: (pred, key, attr, value, cls, level).
CellRow = tuple[str, object, str, object, str, str]
#: A ground plain fact: (pred, args).
PRow = tuple[str, tuple[object, ...]]

BUILTIN_MODES = frozenset({"fir", "opt", "cau"})

#: The distinguished predicate of user-defined belief modes (Section 7).
USER_BELIEF_PREDICATE = "bel"


def _ground(term: Term, subst: Substitution) -> object:
    resolved = walk(term, subst)
    if not isinstance(resolved, Constant):
        raise MultiLogError(f"term {resolved!r} is not ground at derivation time")
    return resolved.value


def atomize_body(body: tuple[BodyAtom, ...]) -> tuple[BodyAtom, ...]:
    """Expand molecules in a body into their atomic conjunctions."""
    out: list[BodyAtom] = []
    for atom in body:
        if isinstance(atom, (MMolecule, BMolecule)):
            out.extend(atom.atoms())
        else:
            out.append(atom)
    return tuple(out)



class CellStore(dict):
    """A ``{CellRow: stamp}`` dict with a ``(pred, attr)`` hash index.

    m-atom goals always carry a ground predicate and attribute name, so
    candidate matching probes the index instead of scanning the whole
    cell base -- the difference between O(matching) and O(all cells) per
    body literal on large databases.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._index: dict[tuple[str, str], list[CellRow]] = {}
        for row in self:
            self._index.setdefault((row[0], row[2]), []).append(row)

    def __setitem__(self, row: CellRow, stamp: int) -> None:
        if row not in self:
            self._index.setdefault((row[0], row[2]), []).append(row)
        super().__setitem__(row, stamp)

    def candidates(self, pred: str, attr: str) -> list[CellRow]:
        return self._index.get((pred, attr), [])


# ----------------------------------------------------------------------
# Proof trees
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProofTree:
    """A node of a sequent-style proof (Figure 11)."""

    rule: str
    conclusion: str
    premises: tuple["ProofTree", ...] = ()
    note: str = ""

    def height(self) -> int:
        """Maximum number of nodes on any root-to-leaf branch (Section 5.4)."""
        if not self.premises:
            return 1
        return 1 + max(p.height() for p in self.premises)

    def size(self) -> int:
        """Total number of nodes (Section 5.4)."""
        return 1 + sum(p.size() for p in self.premises)

    def rules_used(self) -> set[str]:
        out = {self.rule}
        for premise in self.premises:
            out |= premise.rules_used()
        return out

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        note = f"   % {self.note}" if self.note else ""
        lines = [f"{pad}({self.rule}) {self.conclusion}{note}"]
        lines.extend(p.pretty(indent + 1) for p in self.premises)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.pretty()


EMPTY_TREE = ProofTree("EMPTY", "[]")


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class OperationalEngine:
    """Materialized derivability under ``<Delta, u>``."""

    def __init__(self, db: MultiLogDatabase, clearance: str,
                 context: LatticeContext | None = None):
        self.db = db
        self.context = context if context is not None else check_admissibility(db)
        self.lattice: SecurityLattice = self.context.lattice
        self.clearance = self.lattice.check_level(clearance)
        self._sigma = [
            Clause(c.head, atomize_body(c.body)) for c in db.atomized_secured_clauses()
        ]
        self._pi = [
            Clause(c.head, atomize_body(c.body)) for c in db.atomized_plain_clauses()
        ]
        self._clauses = self._sigma + self._pi
        # Firing labels, precomputed once: str(clause) per inner pass
        # would dominate the instrumented path.
        self._labels = [str(c) for c in self._clauses]
        self._user_modes = self._discover_user_modes()
        self._cells: dict[CellRow, int] = {}
        self._pfacts: dict[PRow, int] = {}
        self._computed = False

    # -- user-defined belief modes --------------------------------------
    def _discover_user_modes(self) -> set[str]:
        modes: set[str] = set()
        for clause in self._pi:
            head = clause.head
            if (isinstance(head, PAtom) and head.pred == USER_BELIEF_PREDICATE
                    and len(head.args) == 7 and isinstance(head.args[6], Constant)):
                mode = str(head.args[6].value)
                if mode in BUILTIN_MODES:
                    raise MultiLogError(
                        f"user rules may not redefine the built-in mode {mode!r}"
                    )
                modes.add(mode)
        return modes

    @property
    def modes(self) -> frozenset[str]:
        """All usable belief modes: built-ins plus user-defined ones."""
        return frozenset(BUILTIN_MODES | self._user_modes)

    # -- fixpoint ---------------------------------------------------------
    def compute(self) -> "OperationalEngine":
        """Run the alternating fixpoint (idempotent).

        Reports into the ambient observation context: a ``fixpoint`` span
        with one ``round[i]`` child per outer round, per-clause firing
        counts and ``operational-outer``/``operational-inner`` round
        counts.  An ambient budget meter bounds the inner passes.
        """
        if self._computed:
            return self
        ctx = _current_obs()
        recorder, metrics, meter = ctx.recorder, ctx.metrics, ctx.meter
        has_batoms = any(
            isinstance(atom, BAtom)
            or (isinstance(atom, PAtom) and atom.pred == USER_BELIEF_PREDICATE
                and len(atom.args) == 7)
            for clause in self._clauses
            for atom in clause.body
        )
        previous: dict[CellRow, int] = {}
        limit = 1 if not has_batoms else len(self.lattice) + 2
        with recorder.span("fixpoint", clearance=self.clearance) as fixpoint_span:
            for outer in range(1, limit + 2):
                with recorder.span(f"round[{outer}]", scope="operational-outer") as span:
                    cells, pfacts = self._inner_fixpoint(previous, recorder,
                                                         metrics, meter)
                    span.set(cells=len(cells), pfacts=len(pfacts))
                if not has_batoms or set(cells) == set(previous):
                    self._cells, self._pfacts = cells, pfacts
                    self._computed = True
                    metrics.record_rounds("operational-outer", outer)
                    fixpoint_span.set(outer_rounds=outer, cells=len(cells),
                                      pfacts=len(pfacts))
                    return self
                previous = cells
        raise BeliefRecursionError(
            "the belief fixpoint did not converge within "
            f"{limit} rounds; the program's belief recursion is not level-stratified"
        )

    def _inner_fixpoint(self, belief_cells: dict[CellRow, int],
                        recorder=None, metrics=NULL_METRICS,
                        meter=None) -> tuple[dict[CellRow, int], dict[PRow, int]]:
        # Every fact is stamped with a strictly increasing derivation
        # counter; a fact's supporting body facts always carry smaller
        # stamps, which makes proof reconstruction well-founded.
        cells: CellStore = CellStore()
        pfacts: dict[PRow, int] = {}
        stamp = 0
        changed = True
        rounds = 0
        while changed:
            rounds += 1
            if meter is not None:
                meter.begin_round("operational")
            if recorder is not None and rounds <= MAX_ROUND_SPANS:
                span = recorder.span(f"round[{rounds}]", scope="operational-inner")
            else:
                span = NULL_SPAN
            with span:
                changed = False
                added = 0
                for clause, label in zip(self._clauses, self._labels):
                    if meter is not None:
                        meter.check_time("operational")
                    fired = 0
                    for subst in self._solve_body(clause.body, 0, {}, cells,
                                                  pfacts, belief_cells):
                        fired += 1
                        stamp += 1
                        if self._derive_head(clause.head, subst, cells, pfacts, stamp):
                            changed = True
                            added += 1
                    metrics.rule_fired(label, fired)
                span.set(delta=added)
            if meter is not None and added:
                meter.charge_rows(added, "operational")
        metrics.record_rounds("operational-inner", rounds)
        return cells, pfacts

    def _derive_head(self, head: object, subst: Substitution,
                     cells: dict[CellRow, int], pfacts: dict[PRow, int],
                     round_index: int) -> bool:
        if isinstance(head, MAtom):
            level = str(_ground(head.level, subst))
            cls = str(_ground(head.cls, subst))
            self.lattice.check_level(level)
            self.lattice.check_level(cls)
            # DEDUCTION-G': m-cells above the session clearance are not
            # derivable at <Delta, u>.
            if not self.lattice.leq(level, self.clearance):
                return False
            row: CellRow = (
                head.pred,
                _ground(head.key, subst),
                head.attr,
                _ground(head.value, subst),
                cls,
                level,
            )
            if row not in cells:
                cells[row] = round_index
                return True
            return False
        if isinstance(head, PAtom):
            row_p: PRow = (head.pred, tuple(_ground(a, subst) for a in head.args))
            if row_p not in pfacts:
                pfacts[row_p] = round_index
                return True
            return False
        raise MultiLogError(f"unexpected head atom {head!r}")

    # -- body solving -------------------------------------------------------
    def _solve_body(self, body: tuple[BodyAtom, ...], index: int, subst: Substitution,
                    cells: dict[CellRow, int], pfacts: dict[PRow, int],
                    belief_cells: dict[CellRow, int],
                    round_cap: int | None = None) -> Iterator[Substitution]:
        if index == len(body):
            yield subst
            return
        atom = body[index]
        for extended in self._solve_atom(atom, subst, cells, pfacts, belief_cells, round_cap):
            yield from self._solve_body(body, index + 1, extended, cells, pfacts,
                                        belief_cells, round_cap)

    def _solve_atom(self, atom: BodyAtom, subst: Substitution,
                    cells: dict[CellRow, int], pfacts: dict[PRow, int],
                    belief_cells: dict[CellRow, int],
                    round_cap: int | None = None) -> Iterator[Substitution]:
        if isinstance(atom, MAtom):
            yield from self._solve_matom(atom, subst, cells, round_cap)
        elif isinstance(atom, BAtom):
            yield from self._solve_batom(atom, subst, belief_cells, pfacts, round_cap)
        elif isinstance(atom, PAtom):
            yield from self._solve_patom(atom, subst, pfacts, round_cap, belief_cells)
        elif isinstance(atom, LAtom):
            for level in sorted(self.lattice.levels):
                extended = unify_terms(atom.level, Constant(level), subst)
                if extended is not None:
                    yield extended
        elif isinstance(atom, HAtom):
            for low, high in sorted(self.context.order_rows):
                extended = unify_terms(atom.low, Constant(low), subst)
                if extended is None:
                    continue
                extended = unify_terms(atom.high, Constant(high), extended)
                if extended is not None:
                    yield extended
        elif isinstance(atom, LeqGoal):
            yield from self._solve_leq(atom.low, atom.high, subst)
        else:
            raise MultiLogError(f"unexpected body atom {atom!r}")

    def _solve_leq(self, low: Term, high: Term, subst: Substitution) -> Iterator[Substitution]:
        for lo in sorted(self.lattice.levels):
            extended = unify_terms(low, Constant(lo), subst)
            if extended is None:
                continue
            for hi in sorted(self.lattice.up_set(lo)):
                final = unify_terms(high, Constant(hi), extended)
                if final is not None:
                    yield final

    def _solve_matom(self, atom: MAtom, subst: Substitution,
                     cells: dict[CellRow, int],
                     round_cap: int | None = None) -> Iterator[Substitution]:
        if isinstance(cells, CellStore):
            candidates: Iterable[CellRow] = list(cells.candidates(atom.pred, atom.attr))
        else:
            candidates = list(cells)
        for row in candidates:
            round_index = cells[row]
            if round_cap is not None and round_index >= round_cap:
                continue
            extended = self._unify_cell(atom, row, subst)
            if extended is None:
                continue
            # lambda guards (Section 6.1): level <= u and cls <= u.
            if self.lattice.leq(row[5], self.clearance) and self.lattice.leq(row[4], self.clearance):
                yield extended

    def _unify_cell(self, atom: MAtom, row: CellRow, subst: Substitution) -> Substitution | None:
        pred, key, attr, value, cls, level = row
        if atom.pred != pred or atom.attr != attr:
            return None
        out: Substitution | None = subst
        for term, ground in ((atom.level, level), (atom.key, key),
                             (atom.cls, cls), (atom.value, value)):
            out = unify_terms(term, Constant(ground), out)
            if out is None:
                return None
        return out

    def _solve_patom(self, atom: PAtom, subst: Substitution,
                     pfacts: dict[PRow, int],
                     round_cap: int | None,
                     belief_cells: dict[CellRow, int] | None = None) -> Iterator[Substitution]:
        if atom.pred == "dominate" and len(atom.args) == 2:
            yield from self._solve_leq(atom.args[0], atom.args[1], subst)
            return
        if atom.pred == "level" and len(atom.args) == 1:
            yield from self._solve_atom(LAtom(atom.args[0]), subst, {}, pfacts, {}, None)
            return
        if atom.pred == USER_BELIEF_PREDICATE and len(atom.args) == 7:
            # Built-in beliefs are visible to Pi rules as ordinary bel/7
            # facts, so user-defined modes can refine fir/opt/cau.
            base = belief_cells if belief_cells is not None else self._cells
            yield from self._solve_bel_predicate(atom, subst, base)
        for (pred, args), round_index in list(pfacts.items()):
            if pred != atom.pred or len(args) != len(atom.args):
                continue
            if round_cap is not None and round_index >= round_cap:
                continue
            out: Substitution | None = subst
            for term, ground in zip(atom.args, args):
                out = unify_terms(term, Constant(ground), out)
                if out is None:
                    break
            if out is not None:
                yield out

    def _solve_bel_predicate(self, atom: PAtom, subst: Substitution,
                             belief_cells: dict[CellRow, int]) -> Iterator[Substitution]:
        """Match ``bel(P, K, A, V, C, H, m)`` against built-in beliefs."""
        mode_term = walk(atom.args[6], subst)
        if isinstance(mode_term, Constant):
            if str(mode_term.value) not in BUILTIN_MODES:
                return
            mode_names = [str(mode_term.value)]
        else:
            mode_names = sorted(BUILTIN_MODES)
        for mode in mode_names:
            with_mode = unify_terms(atom.args[6], Constant(mode), subst)
            if with_mode is None:
                continue
            for h, level_subst in self._believing_levels(atom.args[5], with_mode):
                for row in list(self.believed_cells(mode, h, belief_cells)):
                    out: Substitution | None = level_subst
                    for term, ground in zip(atom.args[:5], row[:5]):
                        out = unify_terms(term, Constant(ground), out)
                        if out is None:
                            break
                    if out is not None and self.lattice.leq(row[4], self.clearance):
                        yield out

    # -- belief ------------------------------------------------------------
    def _believing_levels(self, term: Term, subst: Substitution) -> Iterator[tuple[str, Substitution]]:
        """Levels h <= u the b-atom's level term can denote (BELIEF guard)."""
        for level in sorted(self.lattice.down_set(self.clearance)):
            extended = unify_terms(term, Constant(level), subst)
            if extended is not None:
                yield level, extended

    def _solve_batom(self, atom: BAtom, subst: Substitution,
                     belief_cells: dict[CellRow, int], pfacts: dict[PRow, int],
                     round_cap: int | None) -> Iterator[Substitution]:
        mode_term = walk(atom.mode, subst)
        if isinstance(mode_term, Constant):
            mode_names: list[str] = [str(mode_term.value)]
        else:
            mode_names = sorted(self.modes)
        for mode in mode_names:
            if mode not in self.modes:
                raise UnknownModeError(
                    f"belief mode {mode!r} is neither built-in nor defined by "
                    f"'{USER_BELIEF_PREDICATE}/7' rules"
                )
            mode_subst = unify_terms(atom.mode, Constant(mode), subst)
            if mode_subst is None:
                continue
            if mode in BUILTIN_MODES:
                yield from self._solve_builtin_belief(atom, mode, mode_subst, belief_cells)
            else:
                yield from self._solve_user_belief(atom, mode, mode_subst, pfacts, round_cap)

    def _solve_builtin_belief(self, atom: BAtom, mode: str, subst: Substitution,
                              belief_cells: dict[CellRow, int]) -> Iterator[Substitution]:
        matom = atom.matom
        for h, level_subst in self._believing_levels(matom.level, subst):
            for row in self.believed_cells(mode, h, belief_cells):
                extended = self._unify_cell(
                    MAtom(Constant(h), matom.pred, matom.key, matom.attr,
                          matom.cls, matom.value),
                    (row[0], row[1], row[2], row[3], row[4], h),
                    level_subst,
                )
                if extended is None:
                    continue
                if self.lattice.leq(row[4], self.clearance):
                    yield extended

    def believed_cells(self, mode: str, level: str,
                       cells: dict[CellRow, int] | None = None) -> list[CellRow]:
        """All cells believed at ``level`` in a built-in ``mode``.

        Rows keep their *source* classification and level, so callers can
        see where a belief came from; the believing level is the argument.
        """
        base = cells if cells is not None else self.cells()
        self.lattice.check_level(level)
        if mode == "fir":
            return [row for row in base if row[5] == level]
        visible = [row for row in base if self.lattice.leq(row[5], level)]
        audit = _current_obs().audit
        if audit.enabled:
            for row in visible:
                if row[5] != level:
                    audit.emit("cross_level_read", subject=level,
                               object=row[5], mode=mode, predicate=row[0])
        if mode == "opt":
            return visible
        if mode == "cau":
            if audit.enabled:
                for row in visible:
                    if self._outranked(row, visible):
                        audit.emit("override", subject=level, object=row[4],
                                   mode="cau", predicate=row[0],
                                   attribute=row[2])
            return [row for row in visible if not self._outranked(row, visible)]
        raise UnknownModeError(f"{mode!r} is not a built-in mode")

    def _outranked(self, row: CellRow, visible: list[CellRow]) -> bool:
        pred, key, attr, _value, cls, _level = row
        return any(
            other[0] == pred and other[1] == key and other[2] == attr
            and self.lattice.lt(cls, other[4])
            for other in visible
        )

    def _solve_user_belief(self, atom: BAtom, mode: str, subst: Substitution,
                           pfacts: dict[PRow, int],
                           round_cap: int | None) -> Iterator[Substitution]:
        matom = atom.matom
        for h, level_subst in self._believing_levels(matom.level, subst):
            goal = PAtom(USER_BELIEF_PREDICATE, (
                Constant(matom.pred), matom.key, Constant(matom.attr),
                matom.value, matom.cls, Constant(h), Constant(mode),
            ))
            for extended in self._solve_patom(goal, level_subst, pfacts, round_cap, {}):
                cls = walk(matom.cls, extended)
                if isinstance(cls, Constant) and not self.lattice.leq(str(cls.value), self.clearance):
                    continue
                yield extended

    # -- public accessors ---------------------------------------------------
    def cells(self) -> dict[CellRow, int]:
        self.compute()
        return self._cells

    def pfacts(self) -> dict[PRow, int]:
        self.compute()
        return self._pfacts

    def solve(self, query: Query) -> list[Substitution]:
        """All answer substitutions of a query under ``<Delta, u>``."""
        self.compute()
        body = atomize_body(query.body)
        answers: list[Substitution] = []
        seen: set[tuple] = set()
        variables = sorted(query.variables(), key=lambda v: v.name)
        for subst in self._solve_body(body, 0, {}, self._cells, self._pfacts, self._cells):
            key = tuple(repr(walk(v, subst)) for v in variables)
            if key not in seen:
                seen.add(key)
                answers.append({
                    v.name: getattr(walk(v, subst), "value", walk(v, subst))
                    for v in variables
                })
        return answers


# ----------------------------------------------------------------------
# Proof-tree reconstruction
# ----------------------------------------------------------------------
class Prover:
    """Builds Figure 11-style proof trees over a computed engine."""

    def __init__(self, engine: OperationalEngine):
        engine.compute()
        self.engine = engine
        self.lattice = engine.lattice
        self.clearance = engine.clearance

    # -- public entry points ------------------------------------------------
    def prove_query(self, query: Query) -> list[tuple[Substitution, ProofTree]]:
        """One proof tree per distinct answer substitution."""
        body = atomize_body(query.body)
        results: list[tuple[Substitution, ProofTree]] = []
        seen: set[tuple] = set()
        variables = sorted(query.variables(), key=lambda v: v.name)
        for subst, tree in self._prove_conjunction(body, {}):
            key = tuple(repr(walk(v, subst)) for v in variables)
            if key in seen:
                continue
            seen.add(key)
            answer = {
                v.name: getattr(walk(v, subst), "value", walk(v, subst))
                for v in variables
            }
            results.append((answer, tree))
        return results

    def prove(self, query: Query) -> ProofTree | None:
        """The first proof tree for the query, or ``None`` when unprovable."""
        for _subst, tree in self.prove_query(query):
            return tree
        return None

    # -- conjunctions ---------------------------------------------------------
    def _prove_conjunction(self, body: tuple[BodyAtom, ...],
                           subst: Substitution) -> Iterator[tuple[Substitution, ProofTree]]:
        if not body:
            yield subst, EMPTY_TREE
            return
        if len(body) == 1:
            yield from self._prove_atom(body[0], subst)
            return
        head, *rest = body
        for subst1, tree1 in self._prove_atom(head, subst):
            for subst2, tree2 in self._prove_conjunction(tuple(rest), subst1):
                conclusion = ", ".join(str(a) for a in body)
                yield subst2, ProofTree("AND", self._seq(conclusion), (tree1, tree2))

    def _seq(self, goal: str) -> str:
        return f"<D, {self.clearance}> |- {goal}"

    # -- dispatch ---------------------------------------------------------
    def _prove_atom(self, atom: BodyAtom, subst: Substitution) -> Iterator[tuple[Substitution, ProofTree]]:
        if isinstance(atom, MAtom):
            yield from self._prove_matom(atom, subst)
        elif isinstance(atom, BAtom):
            yield from self._prove_batom(atom, subst)
        elif isinstance(atom, PAtom):
            yield from self._prove_patom(atom, subst)
        elif isinstance(atom, LAtom):
            for extended in self.engine._solve_atom(atom, subst, {}, {}, {}):
                level = walk(atom.level, extended)
                yield extended, ProofTree("LEVEL", self._seq(f"level({level})"), (EMPTY_TREE,))
        elif isinstance(atom, HAtom):
            for extended in self.engine._solve_atom(atom, subst, {}, {}, {}):
                low = walk(atom.low, extended)
                high = walk(atom.high, extended)
                yield extended, ProofTree("ORDER", self._seq(f"order({low}, {high})"), (EMPTY_TREE,))
        elif isinstance(atom, LeqGoal):
            yield from self._prove_leq(atom.low, atom.high, subst)
        else:
            raise MultiLogError(f"cannot prove atom {atom!r}")

    # -- lattice goals ------------------------------------------------------
    def _prove_leq(self, low: Term, high: Term,
                   subst: Substitution) -> Iterator[tuple[Substitution, ProofTree]]:
        for extended in self.engine._solve_leq(low, high, subst):
            lo = str(walk(low, extended).value)       # type: ignore[union-attr]
            hi = str(walk(high, extended).value)      # type: ignore[union-attr]
            yield extended, self.leq_tree(lo, hi)

    def leq_tree(self, low: str, high: str) -> ProofTree:
        """REFLEXIVITY for ``l <= l``; TRANSITIVITY over a cover path otherwise."""
        conclusion = self._seq(f"{low} <= {high}")
        if low == high:
            return ProofTree("REFLEXIVITY", conclusion, (EMPTY_TREE,))
        path = self._cover_path(low, high)
        premises = tuple(
            ProofTree("ORDER", self._seq(f"order({a}, {b})"), (EMPTY_TREE,))
            for a, b in zip(path, path[1:])
        )
        if len(premises) == 1:
            return ProofTree("TRANSITIVITY", conclusion, premises)
        return ProofTree("TRANSITIVITY", conclusion, premises)

    def _cover_path(self, low: str, high: str) -> list[str]:
        """A shortest cover-edge path ``low -> ... -> high``."""
        frontier = [[low]]
        seen = {low}
        while frontier:
            path = frontier.pop(0)
            last = path[-1]
            if last == high:
                return path
            for lo, hi in self.engine.context.order_rows:
                if str(lo) == last and str(hi) not in seen:
                    seen.add(str(hi))
                    frontier.append(path + [str(hi)])
        raise MultiLogError(f"no cover path from {low!r} to {high!r}")

    # -- m-atoms ------------------------------------------------------------
    def _prove_matom(self, atom: MAtom, subst: Substitution) -> Iterator[tuple[Substitution, ProofTree]]:
        cells = self.engine.cells()
        for extended in self.engine._solve_matom(atom, subst, cells):
            row = self._resolve_row(atom, extended)
            tree = self._explain_cell(row)
            yield extended, tree

    def _resolve_row(self, atom: MAtom, subst: Substitution) -> CellRow:
        return (
            atom.pred,
            walk(atom.key, subst).value,    # type: ignore[union-attr]
            atom.attr,
            walk(atom.value, subst).value,  # type: ignore[union-attr]
            str(walk(atom.cls, subst).value),    # type: ignore[union-attr]
            str(walk(atom.level, subst).value),  # type: ignore[union-attr]
        )

    def _cell_str(self, row: CellRow) -> str:
        pred, key, attr, value, cls, level = row
        return f"{level}[{pred}({key} : {attr} -{cls}-> {value})]"

    def _explain_cell(self, row: CellRow) -> ProofTree:
        """A DEDUCTION-G' node for a derivable cell.

        Recursion is well-founded: a cell derived in round ``r`` has a
        clause instance whose body facts come from rounds ``< r``.
        """
        cells = self.engine.cells()
        pfacts = self.engine.pfacts()
        round_index = cells[row]
        conclusion = self._seq(self._cell_str(row))
        guard = self.leq_tree(row[5], self.clearance)
        for clause in self.engine._sigma:
            head = clause.head
            if not isinstance(head, MAtom):
                continue
            head_subst = self.engine._unify_cell(head, row, {})
            if head_subst is None:
                continue
            if clause.is_fact:
                return ProofTree("DEDUCTION-G'", conclusion, (guard, EMPTY_TREE),
                                 note="fact in Sigma")
            for body_subst in self.engine._solve_body(
                    clause.body, 0, head_subst, cells, pfacts, cells, round_cap=round_index):
                body_tree = self._explain_body(clause.body, body_subst)
                return ProofTree("DEDUCTION-G'", conclusion, (guard, body_tree),
                                 note=f"via clause: {clause}")
        raise MultiLogError(f"cell {row!r} has no recorded derivation")

    def _explain_body(self, body: tuple[BodyAtom, ...], subst: Substitution) -> ProofTree:
        """A proof tree for an already-satisfied ground body instance."""
        trees: list[ProofTree] = []
        for atom in body:
            for _s, tree in self._prove_atom(self._substitute(atom, subst), subst):
                trees.append(tree)
                break
            else:
                raise MultiLogError(f"body atom {atom} lost its derivation")
        if not trees:
            return EMPTY_TREE
        if len(trees) == 1:
            return trees[0]
        conclusion = ", ".join(str(a) for a in body)
        return ProofTree("AND", self._seq(conclusion), tuple(trees))

    def _substitute(self, atom: BodyAtom, subst: Substitution) -> BodyAtom:
        if isinstance(atom, MAtom):
            return MAtom(walk(atom.level, subst), atom.pred, walk(atom.key, subst),
                         atom.attr, walk(atom.cls, subst), walk(atom.value, subst))
        if isinstance(atom, BAtom):
            inner = self._substitute(atom.matom, subst)
            assert isinstance(inner, MAtom)
            return BAtom(inner, walk(atom.mode, subst))
        if isinstance(atom, PAtom):
            return PAtom(atom.pred, tuple(walk(a, subst) for a in atom.args))
        if isinstance(atom, LAtom):
            return LAtom(walk(atom.level, subst))
        if isinstance(atom, HAtom):
            return HAtom(walk(atom.low, subst), walk(atom.high, subst))
        if isinstance(atom, LeqGoal):
            return LeqGoal(walk(atom.low, subst), walk(atom.high, subst))
        return atom

    # -- p-atoms ------------------------------------------------------------
    def _prove_patom(self, atom: PAtom, subst: Substitution) -> Iterator[tuple[Substitution, ProofTree]]:
        pfacts = self.engine.pfacts()
        if atom.pred == "dominate" and len(atom.args) == 2:
            yield from self._prove_leq(atom.args[0], atom.args[1], subst)
            return
        for extended in self.engine._solve_patom(atom, subst, pfacts, None):
            row: PRow = (atom.pred, tuple(
                walk(a, extended).value for a in atom.args  # type: ignore[union-attr]
            ))
            if row in pfacts:
                yield extended, self._explain_pfact(row)
                continue
            # A bel/7 body atom satisfied by a built-in belief: prove it
            # as the corresponding b-atom (DEDUCTION-B lifts |- to |-m).
            if atom.pred == USER_BELIEF_PREDICATE and len(row[1]) == 7:
                pred, key, attr, value, cls, h, mode = row[1]
                batom = BAtom(
                    MAtom(Constant(str(h)), str(pred), Constant(key), str(attr),
                          Constant(str(cls)), Constant(value)),
                    Constant(str(mode)),
                )
                produced = False
                for _s, tree in self._prove_batom(batom, {}):
                    yield extended, ProofTree(
                        "DEDUCTION-B", self._seq(f"{atom.pred}{row[1]!r}"), (tree,)
                    )
                    produced = True
                    break
                if not produced:
                    raise MultiLogError(f"belief fact {row!r} lost its derivation")
                continue
            raise MultiLogError(f"plain fact {row!r} has no recorded derivation")

    def _explain_pfact(self, row: PRow) -> ProofTree:
        pfacts = self.engine.pfacts()
        cells = self.engine.cells()
        round_index = pfacts[row]
        pred, args = row
        conclusion = self._seq(f"{pred}({', '.join(str(a) for a in args)})")
        goal = PAtom(pred, tuple(Constant(a) for a in args))
        for clause in self.engine._pi:
            head = clause.head
            if not isinstance(head, PAtom) or head.pred != pred or len(head.args) != len(args):
                continue
            head_subst: Substitution | None = {}
            for term, ground in zip(head.args, args):
                head_subst = unify_terms(term, Constant(ground), head_subst)
                if head_subst is None:
                    break
            if head_subst is None:
                continue
            if clause.is_fact:
                return ProofTree("DEDUCTION-G", conclusion, (EMPTY_TREE,), note="fact in Pi")
            for body_subst in self.engine._solve_body(
                    clause.body, 0, head_subst, cells, pfacts, cells, round_cap=round_index):
                body_tree = self._explain_body(clause.body, body_subst)
                return ProofTree("DEDUCTION-G", conclusion, (body_tree,),
                                 note=f"via clause: {clause}")
        raise MultiLogError(f"plain fact {goal} has no recorded derivation")

    # -- b-atoms ------------------------------------------------------------
    def _prove_batom(self, atom: BAtom, subst: Substitution) -> Iterator[tuple[Substitution, ProofTree]]:
        cells = self.engine.cells()
        pfacts = self.engine.pfacts()
        for extended in self.engine._solve_batom(atom, subst, cells, pfacts, None):
            grounded = self._substitute(atom, extended)
            assert isinstance(grounded, BAtom)
            mode = str(walk(grounded.mode, extended).value)  # type: ignore[union-attr]
            h = str(walk(grounded.matom.level, extended).value)  # type: ignore[union-attr]
            conclusion = self._seq(str(grounded))
            guard = self.leq_tree(h, self.clearance)
            mode_tree = self._mode_tree(grounded.matom, mode, h, extended)
            yield extended, ProofTree("BELIEF", conclusion, (guard, mode_tree))

    def _mode_tree(self, matom: MAtom, mode: str, h: str, subst: Substitution) -> ProofTree:
        source = self._believed_source(matom, mode, h, subst)
        if mode in BUILTIN_MODES and source is not None:
            cell_tree = self._explain_cell(source)
            if mode == "fir":
                return cell_tree
            descend = self.leq_tree(source[5], h)
            inner = f"|-{mode} {self._cell_str(source)} believed at {h}"
            if mode == "opt":
                return ProofTree("DESCEND-O", inner, (descend, cell_tree))
            rule, note = self._classify_cautious(source, h)
            return ProofTree(rule, inner, (descend, cell_tree), note=note)
        # User-defined mode: USER-BELIEF copies the bel/7 proof (Figure 13).
        pred_args = (
            Constant(matom.pred), walk(matom.key, subst), Constant(matom.attr),
            walk(matom.value, subst), walk(matom.cls, subst), Constant(h), Constant(mode),
        )
        goal = PAtom(USER_BELIEF_PREDICATE, pred_args)
        for _s, tree in self._prove_patom(goal, subst):
            return ProofTree("USER-BELIEF", self._seq(str(goal)), (tree,))
        raise MultiLogError(f"believed atom {matom} << {mode} lost its derivation")

    def _believed_source(self, matom: MAtom, mode: str, h: str,
                         subst: Substitution) -> CellRow | None:
        if mode not in BUILTIN_MODES:
            return None
        key = walk(matom.key, subst).value      # type: ignore[union-attr]
        value = walk(matom.value, subst).value  # type: ignore[union-attr]
        cls = str(walk(matom.cls, subst).value)  # type: ignore[union-attr]
        for row in self.engine.believed_cells(mode, h):
            if (row[0], row[1], row[2], row[3], row[4]) == (matom.pred, key, matom.attr, value, cls):
                return row
        return None

    def _classify_cautious(self, source: CellRow, h: str) -> tuple[str, str]:
        """Name the DESCEND-C case (mirrors axioms a6-a9 of Figure 12)."""
        visible = [
            row for row in self.engine.cells()
            if row[0] == source[0] and row[1] == source[1] and row[2] == source[2]
            and self.lattice.leq(row[5], h)
        ]
        local = [row for row in visible if row[5] == h]
        others = [row for row in visible if row != source]
        note = "no visible cell with a dominating classification"
        if source[5] == h and not others:
            return "DESCEND-C1", note          # local cell, no competition (a6)
        if source[5] != h and not local:
            return "DESCEND-C2", note          # inherited, nothing local (a7)
        if source[5] != h and local:
            return "DESCEND-C3", note + "; overrides the local cell"   # (a8)
        return "DESCEND-C4", note + "; local cell survives lower ones"  # (a9)

