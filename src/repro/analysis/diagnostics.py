"""Structured diagnostics: the currency of the static analyzer.

Every check in :mod:`repro.analysis` reports :class:`Diagnostic` objects
-- a stable code (``ML001`` ... ``ML021``), a severity, a human message,
the offending clause/rule text and a fix hint -- collected into an
:class:`AnalysisReport` that renders as text or JSON and maps to a
process exit code (``multilog lint --strict``).

The code registry is the contract: codes are append-only and their
meaning never changes (tests pin them; docs/ANALYSIS.md documents each
one with a minimal triggering program).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import IntEnum

#: Version of the analyzer contract, stamped into JSON envelopes so
#: downstream consumers (CI diffs, dashboards) can detect registry growth.
#: Bump the major on new diagnostic codes, the minor on message changes.
ANALYZER_VERSION = "2.0"


def fingerprint(text: str) -> str:
    """A short stable hash of a program's canonical text.

    Reports carry it (``program_hash`` in the JSON envelope) so a stored
    lint result can be matched against the exact program it judged.
    """
    return hashlib.sha256(text.encode("utf-8", "replace")).hexdigest()[:16]


class Severity(IntEnum):
    """Diagnostic severity; comparable (``ERROR > WARNING > INFO``)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


#: The stable diagnostic code registry: ``code -> (default severity, title)``.
CODES: dict[str, tuple[Severity, str]] = {
    "ML000": (Severity.ERROR, "parse error"),
    "ML001": (Severity.ERROR, "program is not stratifiable (recursion through negation)"),
    "ML002": (Severity.ERROR, "unsafe rule: head variable unbound by the body"),
    "ML003": (Severity.ERROR, "unsafe rule: variable of a negated/built-in literal unbound"),
    "ML004": (Severity.ERROR, "arity clash: one predicate used with different arities"),
    "ML005": (Severity.ERROR, "undeclared security label in Sigma (Definition 5.3, condition 2)"),
    "ML006": (Severity.ERROR, "lattice not self-contained (Definition 5.3, condition 1)"),
    "ML007": (Severity.ERROR, "[[Lambda]] is not a partial order (Definition 5.3, condition 3)"),
    "ML008": (Severity.WARNING, "potential downward information flow"),
    "ML009": (Severity.WARNING, "surprise-story reconstruction risk"),
    "ML010": (Severity.WARNING, "dead predicate: unreachable from the stored queries"),
    "ML011": (Severity.INFO, "unused security level"),
    "ML012": (Severity.INFO, "belief feedback: reduction requires level specialization"),
    "ML013": (Severity.ERROR, "unknown belief mode"),
    "ML014": (Severity.ERROR, "unsound compiled plan (codegen violates rule semantics)"),
    "ML015": (Severity.ERROR, "guard evaluated before its variables are bound"),
    "ML016": (Severity.WARNING, "dead op in compiled plan pipeline"),
    "ML017": (Severity.WARNING, "statically-empty relation: no rule can ever fire"),
    "ML018": (Severity.INFO, "rule delta not monotone: needs DRed-style overdeletion"),
    "ML019": (Severity.WARNING, "built-in guard can never be satisfied"),
    "ML020": (Severity.ERROR, "blocking call inside an async function"),
    "ML021": (Severity.ERROR, "await while holding the RW lock's write side"),
}


def default_severity(code: str) -> Severity:
    """The registry severity of ``code`` (ERROR for unknown codes)."""
    return CODES.get(code, (Severity.ERROR, ""))[0]


def code_title(code: str) -> str:
    """The registry one-line title of ``code``."""
    return CODES.get(code, (Severity.ERROR, "unknown diagnostic"))[1]


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, pinned to a code and a program location."""

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def render(self) -> str:
        """``error ML002: message  [at: location]  (hint: ...)``."""
        parts = [f"{self.severity.label} {self.code}: {self.message}"]
        if self.location:
            parts.append(f"  at: {self.location}")
        if self.hint:
            parts.append(f"  hint: {self.hint}")
        return "\n".join(parts)

    def to_dict(self) -> dict:
        out: dict = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.location:
            out["location"] = self.location
        if self.hint:
            out["hint"] = self.hint
        return out


@dataclass
class AnalysisReport:
    """An ordered collection of diagnostics with rendering helpers.

    Rendering (text and JSON) always goes through :meth:`normalized` --
    exact duplicates collapse and the order is the stable ``(code,
    location, message)`` sort -- so two runs over the same program
    produce byte-identical output regardless of pass scheduling or set
    iteration order inside individual checks.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Short hash of the analyzed program (see :func:`fingerprint`);
    #: empty when the analyzer had no canonical text to hash.
    program_hash: str = ""

    # -- construction ---------------------------------------------------
    def add(self, code: str, message: str, *, location: str = "", hint: str = "",
            severity: Severity | None = None) -> Diagnostic:
        """Append a diagnostic; the severity defaults from the registry."""
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else default_severity(code),
            message=message,
            location=location,
            hint=hint,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        if not self.program_hash:
            self.program_hash = other.program_hash

    # -- queries --------------------------------------------------------
    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was reported."""
        return not self.errors

    def clean(self, strict: bool = False) -> bool:
        """No errors; under ``strict`` also no warnings."""
        if strict:
            return not self.errors and not self.warnings
        return self.ok

    def codes(self) -> list[str]:
        """The distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def exit_code(self, strict: bool = False) -> int:
        """Process exit status for CI: 0 clean, 1 otherwise."""
        return 0 if self.clean(strict) else 1

    def normalized(self) -> list[Diagnostic]:
        """Deduplicated diagnostics in stable ``(code, location)`` order."""
        ordered = sorted(
            set(self.diagnostics),
            key=lambda d: (d.code, d.location, d.message, int(d.severity)),
        )
        return ordered

    # -- rendering ------------------------------------------------------
    def summary(self) -> str:
        deduped = self.normalized()
        errors = sum(1 for d in deduped if d.severity is Severity.ERROR)
        warnings = sum(1 for d in deduped if d.severity is Severity.WARNING)
        infos = sum(1 for d in deduped if d.severity is Severity.INFO)
        return f"{errors} error(s), {warnings} warning(s), {infos} info(s)"

    def render_text(self) -> str:
        """Human-readable listing, most severe first, summary last."""
        if not self.diagnostics:
            return "no findings: program is clean."
        ordered = sorted(
            self.normalized(),
            key=lambda d: (-int(d.severity), d.code, d.location, d.message),
        )
        lines = [d.render() for d in ordered]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dicts(self) -> dict:
        deduped = self.normalized()
        out: dict = {
            "analyzer": ANALYZER_VERSION,
            "diagnostics": [d.to_dict() for d in deduped],
            "summary": {
                "errors": sum(1 for d in deduped if d.severity is Severity.ERROR),
                "warnings": sum(1 for d in deduped if d.severity is Severity.WARNING),
                "infos": sum(1 for d in deduped if d.severity is Severity.INFO),
            },
            "ok": self.ok,
        }
        if self.program_hash:
            out["program_hash"] = self.program_hash
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dicts(), indent=indent, sort_keys=False)
