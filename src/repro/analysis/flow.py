"""Lattice-aware security-flow analysis (ML008 / ML009 / ML012 / ML013).

Three leak-shaped properties are checked *before* evaluation:

* **Downward flows** (ML008): a Sigma rule whose head m-atom is stored at
  a level that does not dominate some body m-/b-atom's level (or the
  body cell's classification) rewrites high data where lower-cleared
  subjects can derive it -- the deductive analogue of a Bell-LaPadula
  write-down.

* **Surprise-story reconstruction** (ML009): the ground Sigma facts are
  materialized through a facts-only :class:`~repro.multilog.proof.
  OperationalEngine` and handed to the Section-7 surprise oracle
  (:func:`repro.multilog.extensions.surprise_cells`, the deductive image
  of :mod:`repro.mls.surprise`).  A detected story is reported at INFO
  severity (the leak exists at query time); it escalates to WARNING when
  some rule's optimistic/unknown-mode belief over the null-bearing
  predicate can *re-derive* the story at or below the observing level --
  the Section 2 scenario made into a rule.

* **Belief feedback** (ML012, info): clauses whose bodies consult
  beliefs, forcing the reduction into level specialization -- worth
  knowing because level-cyclic feedback then fails stratification
  (ML001) instead of evaluating.

* **Unknown modes** (ML013): b-atoms whose ground mode is neither
  built-in (``fir``/``opt``/``cau``) nor defined by a ``bel/7`` rule in
  Pi -- the query would silently return no answers at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.terms import Constant, Variable
from repro.errors import MultiLogError
from repro.multilog.ast import (
    BAtom,
    BodyAtom,
    Clause,
    MAtom,
    MMolecule,
    MultiLogDatabase,
)
from repro.multilog.admissibility import LatticeContext
from repro.multilog.proof import BUILTIN_MODES, USER_BELIEF_PREDICATE, atomize_body
from repro.multilog.ast import PAtom


@dataclass(frozen=True)
class FlowFinding:
    """One potential downward flow: the clause plus offending atoms."""

    clause: str
    head_level: str
    source_level: str
    source_kind: str  # "level" or "classification"
    body_atom: str

    def message(self) -> str:
        return (
            f"head is stored at level {self.head_level!r} but its body reads "
            f"{self.body_atom} whose {self.source_kind} {self.source_level!r} is not "
            f"dominated by {self.head_level!r}: data can flow downward"
        )


@dataclass(frozen=True)
class SurpriseRisk:
    """A surprise story visible at ``level``, plus any rules re-deriving it."""

    pred: str
    key: object
    level: str
    attributes: tuple[str, ...]
    reconstructing_rules: tuple[str, ...]

    def message(self) -> str:
        attrs = ", ".join(self.attributes)
        base = (
            f"an observer at level {self.level!r} sees {self.pred}({self.key!r}) with "
            f"null attribute(s) {attrs} no visible tuple covers: the existence of "
            f"higher-classified data leaks (a surprise story)"
        )
        if self.reconstructing_rules:
            rules = "; ".join(self.reconstructing_rules)
            base += f"; rule(s) [{rules}] rebuild it through optimistic belief"
        return base


def _body_matoms(body: tuple[BodyAtom, ...]) -> list[tuple[MAtom, BodyAtom]]:
    """The m-atoms consulted by a body, paired with the enclosing atom."""
    out: list[tuple[MAtom, BodyAtom]] = []
    for atom in atomize_body(body):
        if isinstance(atom, MAtom):
            out.append((atom, atom))
        elif isinstance(atom, BAtom):
            out.append((atom.matom, atom))
    return out


def downward_flows(db: MultiLogDatabase, context: LatticeContext) -> list[FlowFinding]:
    """Every Sigma rule with a constant-level downward/lateral flow."""
    lattice = context.lattice
    findings: list[FlowFinding] = []
    for clause in db.atomized_secured_clauses():
        if clause.is_fact:
            continue
        head = clause.head
        if not isinstance(head, MAtom) or not isinstance(head.level, Constant):
            continue
        head_level = str(head.level.value)
        if head_level not in lattice.levels:
            continue  # admissibility (ML005) already covers this
        for matom, enclosing in _body_matoms(clause.body):
            reported: set[str] = set()
            for kind, term in (("level", matom.level), ("classification", matom.cls)):
                if not isinstance(term, Constant):
                    continue
                source = str(term.value)
                if source not in lattice.levels or source in reported:
                    continue
                if not lattice.leq(source, head_level):
                    reported.add(source)
                    findings.append(FlowFinding(
                        str(clause), head_level, source, kind, str(enclosing)))
    return findings


def _ground_sigma_database(db: MultiLogDatabase) -> MultiLogDatabase | None:
    """Lambda plus only the *ground* Sigma facts, or ``None`` when empty.

    This is the static projection the surprise oracle runs on: rule-free,
    so the facts-only fixpoint is trivial and analysis stays cheap.
    """
    facts: list[Clause] = []
    for clause in db.secured_clauses:
        if not clause.is_fact:
            continue
        head = clause.head
        if isinstance(head, (MAtom, MMolecule)) and not head.variables():
            facts.append(clause)
    if not facts:
        return None
    return MultiLogDatabase(
        lattice_clauses=list(db.lattice_clauses),
        secured_clauses=facts,
    )


def _reconstructing_rules(db: MultiLogDatabase, context: LatticeContext,
                          pred: str, level: str) -> tuple[str, ...]:
    """Rules whose optimistic/unknown-mode belief over ``pred`` can land
    the story at or below ``level`` (head level dominated or variable)."""
    lattice = context.lattice
    rules: list[str] = []
    for clause in db.atomized_secured_clauses():
        if clause.is_fact or not isinstance(clause.head, MAtom):
            continue
        consults_opt = False
        for atom in atomize_body(clause.body):
            if not isinstance(atom, BAtom) or atom.matom.pred != pred:
                continue
            mode = atom.mode
            if isinstance(mode, Variable) or str(getattr(mode, "value", "")) == "opt":
                consults_opt = True
                break
        if not consults_opt:
            continue
        head_level = clause.head.level
        if isinstance(head_level, Variable):
            rules.append(str(clause))
        elif (str(head_level.value) in lattice.levels
              and lattice.leq(str(head_level.value), level)):
            rules.append(str(clause))
    return tuple(rules)


def surprise_risks(db: MultiLogDatabase, context: LatticeContext) -> list[SurpriseRisk]:
    """Surprise stories latent in the ground Sigma facts, per level.

    Reuses the runtime oracles: a facts-only operational engine
    materializes the ground cells and :func:`~repro.multilog.extensions.
    surprise_cells` performs the null-masking / covering test of
    :mod:`repro.mls.surprise` on the deductive side.
    """
    from repro.multilog.extensions import surprise_cells
    from repro.multilog.proof import OperationalEngine

    ground = _ground_sigma_database(db)
    if ground is None:
        return []
    lattice = context.lattice
    risks: list[SurpriseRisk] = []
    try:
        engines = [OperationalEngine(ground, top, context)
                   for top in sorted(lattice.tops())]
    except MultiLogError:
        return []
    seen: set[tuple[str, object, str]] = set()
    for level in sorted(lattice.levels):
        stories: dict[tuple[str, object], set[str]] = {}
        for engine in engines:
            for row in surprise_cells(engine, level):
                stories.setdefault((row[0], row[1]), set()).add(row[2])
        for (pred, key), attrs in sorted(stories.items(), key=repr):
            if (pred, key, level) in seen:
                continue
            seen.add((pred, key, level))
            risks.append(SurpriseRisk(
                pred, key, level, tuple(sorted(attrs)),
                _reconstructing_rules(db, context, pred, level),
            ))
    return risks


def belief_feedback(db: MultiLogDatabase) -> list[str]:
    """Clauses whose bodies consult beliefs (forcing level specialization)."""
    out: list[str] = []
    for clause in db.atomized_secured_clauses() + db.atomized_plain_clauses():
        if any(isinstance(atom, BAtom) for atom in atomize_body(clause.body)):
            out.append(str(clause))
    return out


def declared_modes(db: MultiLogDatabase) -> frozenset[str]:
    """Built-in modes plus the user modes defined by ``bel/7`` Pi heads."""
    modes = set(BUILTIN_MODES)
    for clause in db.atomized_plain_clauses():
        head = clause.head
        if (isinstance(head, PAtom) and head.pred == USER_BELIEF_PREDICATE
                and len(head.args) == 7 and isinstance(head.args[6], Constant)):
            modes.add(str(head.args[6].value))
    return frozenset(modes)


def unknown_modes(db: MultiLogDatabase) -> list[tuple[str, str]]:
    """``(mode, where)`` for every ground b-atom mode nobody defines."""
    modes = declared_modes(db)
    out: list[tuple[str, str]] = []

    def scan(body: tuple[BodyAtom, ...], where: str) -> None:
        for atom in atomize_body(body):
            if isinstance(atom, BAtom) and isinstance(atom.mode, Constant):
                mode = str(atom.mode.value)
                if mode not in modes:
                    out.append((mode, where))

    for clause in db.secured_clauses + db.plain_clauses:
        scan(clause.body, f"clause {clause}")
    for query in db.queries:
        scan(query.body, f"query {query}")
    return out
