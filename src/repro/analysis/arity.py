"""Arity consistency across rule heads, bodies, facts and queries.

``Program.add_rule`` happily accepts ``p/2`` next to ``p/3`` -- the fact
store keys rows by predicate *and* arity, so the two populations never
join and queries silently come back empty.  The same applies to p-atoms
in MultiLog's Pi component, and to misuse of the reserved predicates
(``level/1``, ``order/2``, ``bel/7``).  This module finds every such
clash up front (diagnostic ``ML004``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.rules import Program
from repro.multilog.ast import (
    BAtom,
    BMolecule,
    Clause,
    HAtom,
    LAtom,
    MAtom,
    MMolecule,
    MultiLogDatabase,
    PAtom,
)
from repro.multilog.proof import USER_BELIEF_PREDICATE

#: Predicates with a fixed arity reserved by the language / reduction.
RESERVED_ARITIES: dict[str, int] = {
    "level": 1,
    "order": 2,
    USER_BELIEF_PREDICATE: 7,  # bel(p, k, a, v, c, l, m) -- Section 7
}


@dataclass(frozen=True)
class ArityClash:
    """One predicate observed at more than one arity."""

    predicate: str
    arities: tuple[int, ...]
    #: one ``(arity, where)`` sample per arity, for the diagnostic text.
    occurrences: tuple[tuple[int, str], ...]

    def message(self) -> str:
        shapes = "/".join(str(a) for a in self.arities)
        samples = "; ".join(f"{self.predicate}/{arity} in {where}"
                            for arity, where in self.occurrences)
        return (f"predicate {self.predicate!r} is used with arities {shapes} "
                f"({samples}); the populations never join")


class _Usages:
    """Accumulates ``predicate -> {arity -> first location}``."""

    def __init__(self) -> None:
        self.seen: dict[str, dict[int, str]] = {}

    def record(self, predicate: str, arity: int, where: str) -> None:
        self.seen.setdefault(predicate, {}).setdefault(arity, where)

    def clashes(self) -> list[ArityClash]:
        out: list[ArityClash] = []
        for predicate in sorted(self.seen):
            arities = self.seen[predicate]
            if len(arities) < 2:
                continue
            ordered = tuple(sorted(arities))
            out.append(ArityClash(
                predicate, ordered,
                tuple((arity, arities[arity]) for arity in ordered),
            ))
        return out


def program_arity_clashes(program: Program) -> list[ArityClash]:
    """Arity clashes across a plain Datalog program."""
    usages = _Usages()
    for fact in program.facts:
        usages.record(fact.predicate, fact.arity, f"fact {fact!r}.")
    for rule in program.rules:
        where = f"rule {rule!r}"
        usages.record(rule.head.predicate, rule.head.arity, where)
        for literal in rule.body:
            if literal.atom.is_builtin:
                continue
            usages.record(literal.predicate, literal.atom.arity, where)
    return usages.clashes()


def _record_body_atom(atom: object, where: str, usages: _Usages) -> None:
    if isinstance(atom, PAtom):
        usages.record(atom.pred, len(atom.args), where)
    elif isinstance(atom, LAtom):
        usages.record("level", 1, where)
    elif isinstance(atom, HAtom):
        usages.record("order", 2, where)
    # m-/b-atoms have a fixed shape enforced by the parser; molecules too.


def database_arity_clashes(db: MultiLogDatabase) -> list[ArityClash]:
    """Arity clashes across a MultiLog database's p-atoms and queries.

    Reserved predicates are seeded at their language-defined arity, so a
    stray ``order(u, c, s)`` or ``bel/3`` head clashes immediately.
    """
    usages = _Usages()
    for predicate, arity in RESERVED_ARITIES.items():
        usages.record(predicate, arity, "reserved by the language")
    clauses: list[Clause] = db.clauses()
    for clause in clauses:
        where = f"clause {clause}"
        head = clause.head
        if isinstance(head, PAtom):
            usages.record(head.pred, len(head.args), where)
        elif isinstance(head, LAtom):
            usages.record("level", 1, where)
        elif isinstance(head, HAtom):
            usages.record("order", 2, where)
        for atom in clause.body:
            if isinstance(atom, (MAtom, MMolecule, BAtom, BMolecule)):
                continue
            _record_body_atom(atom, where, usages)
    for query in db.queries:
        where = f"query {query}"
        for atom in query.body:
            if isinstance(atom, (MAtom, MMolecule, BAtom, BMolecule)):
                continue
            _record_body_atom(atom, where, usages)
    return usages.clashes()
