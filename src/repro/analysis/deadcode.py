"""Dead-code lint: unreachable predicates (ML010) and unused levels (ML011).

A MultiLog database carries its workload in ``Q``: a predicate no query
(transitively) consults is dead weight the bottom-up engine still
materializes.  Likewise a declared security level that classifies no
Sigma data and appears in no query is a lattice point nobody can
observe anything at -- usually a typo'd label or leftover scaffolding.
Both lints are advisory: dead rules are wasteful, not wrong.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.datalog.rules import Program
from repro.datalog.terms import Constant
from repro.multilog.admissibility import LatticeContext, _labels_used_in_sigma
from repro.multilog.ast import (
    BAtom,
    BMolecule,
    BodyAtom,
    HAtom,
    LAtom,
    MAtom,
    MMolecule,
    MultiLogDatabase,
    PAtom,
)
from repro.multilog.proof import USER_BELIEF_PREDICATE, atomize_body

from repro.analysis.graph import DependencyGraph

#: Predicates the language itself consumes, never dead.
_IMPLICIT_LIVE = frozenset({"level", "order", USER_BELIEF_PREDICATE})


def dead_predicates(program: Program, roots: Iterable[str]) -> list[str]:
    """Predicates of ``program`` unreachable from the query ``roots``."""
    root_list = [root for root in roots]
    if not root_list:
        return []
    graph = DependencyGraph.from_program(program)
    live = graph.reachable(root_list)
    return sorted(program.predicates() - live - _IMPLICIT_LIVE)


def _atom_node(atom: BodyAtom) -> list[tuple[str, str]]:
    """Namespaced graph nodes consulted by one body atom."""
    if isinstance(atom, MAtom):
        return [("m", atom.pred)]
    if isinstance(atom, MMolecule):
        return [("m", component.pred) for component in atom.atoms()]
    if isinstance(atom, BAtom):
        return [("m", atom.matom.pred)]
    if isinstance(atom, BMolecule):
        return [("m", component.pred) for component in atom.molecule.atoms()]
    if isinstance(atom, PAtom):
        return [("p", atom.pred)]
    return []  # l-/h-atoms and <= goals: lattice machinery, always live


def _database_graph(db: MultiLogDatabase) -> tuple[DependencyGraph, set[tuple[str, str]]]:
    """Namespaced dependency graph over Sigma/Pi (m- and p-predicates).

    Secured and plain predicates live in separate namespaces (``("m",
    name)`` vs ``("p", name)``) because the reduction keeps them apart:
    a p-atom ``p(...)`` never consults the secured relation ``p``.
    """
    edges: list[tuple[tuple[str, str], tuple[str, str], bool]] = []
    nodes: set[tuple[str, str]] = set()
    for clause in db.atomized_secured_clauses() + db.atomized_plain_clauses():
        head = clause.head
        if isinstance(head, (MAtom, MMolecule)):
            head_nodes = _atom_node(head)
        elif isinstance(head, PAtom) and head.pred not in _IMPLICIT_LIVE:
            head_nodes = [("p", head.pred)]
        else:
            continue
        nodes.update(head_nodes)
        for atom in atomize_body(clause.body):
            for body_node in _atom_node(atom):
                nodes.add(body_node)
                for head_node in head_nodes:
                    edges.append((head_node, body_node, False))
    graph = DependencyGraph.from_edges(
        ("/".join(h), "/".join(b), neg) for h, b, neg in edges)
    for node in nodes:
        graph.nodes.add("/".join(node))
    return graph, nodes


def dead_database_predicates(db: MultiLogDatabase) -> list[tuple[str, str]]:
    """``(kind, predicate)`` pairs no query of ``Q`` reaches.

    ``kind`` is ``"secured"`` or ``"plain"``.  With an empty ``Q`` there
    is no workload to judge against and the lint stays silent.
    """
    if not db.queries:
        return []
    graph, nodes = _database_graph(db)
    roots: list[str] = []
    for query in db.queries:
        for atom in atomize_body(query.body):
            roots.extend("/".join(node) for node in _atom_node(atom))
    live = graph.reachable(roots)
    dead: list[tuple[str, str]] = []
    for kind, pred in sorted(nodes):
        if f"{kind}/{pred}" not in live:
            dead.append(("secured" if kind == "m" else "plain", pred))
    return dead


def _labels_used_in_queries(db: MultiLogDatabase) -> set[str]:
    """Ground levels/classifications mentioned by any query body."""
    labels: set[str] = set()

    def collect(matom: MAtom) -> None:
        for term in (matom.level, matom.cls):
            if isinstance(term, Constant):
                labels.add(str(term.value))

    for query in db.queries:
        for atom in atomize_body(query.body):
            if isinstance(atom, MAtom):
                collect(atom)
            elif isinstance(atom, BAtom):
                collect(atom.matom)
            elif isinstance(atom, (LAtom, HAtom)):
                for term in [getattr(atom, "level", None),
                             getattr(atom, "low", None),
                             getattr(atom, "high", None)]:
                    if isinstance(term, Constant):
                        labels.add(str(term.value))
    return labels


def unused_levels(db: MultiLogDatabase, context: LatticeContext) -> list[str]:
    """Declared levels that classify nothing and appear in no query.

    Top elements are exempt: they exist to give omniscient observers a
    clearance, not to classify data.
    """
    lattice = context.lattice
    used = _labels_used_in_sigma(db) | _labels_used_in_queries(db)
    return sorted(lattice.levels - used - lattice.tops())
