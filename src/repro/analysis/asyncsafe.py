"""Async-safety lint for the serving layer (ML020/ML021).

One stray blocking call inside the asyncio event loop stalls *every*
multiplexed client, and one ``await`` while holding the write side of
the serving layer's write-preferring RW lock can deadlock writers
against the work they are waiting on.  Both defects are invisible to
tests that drive the server lightly -- they only bite under load -- so
this pass finds them statically, from the Python :mod:`ast`:

* **ML020** -- a known-blocking call in an ``async def`` body that is
  not offloaded: bare ``open()``/``input()``, sync module calls
  (``time.sleep``, ``os.fsync``, ``subprocess.run``, ...), engine entry
  points (``.ask()``, ``.assert_clause()``, ``.evaluate()``,
  ``.analyze()``, ``.recover()``, journal ``.replay()``/``.compact()``),
  blocking file methods (``.read_text()`` & friends) and a sync lock
  ``.acquire()``.  A call that is directly ``await``-ed is the async
  flavour of the same name (``await client.ask(...)``,
  ``await lock.acquire()``) and passes; deferring a callable through
  ``functools.partial``/``run_in_executor`` never creates a ``Call``
  node for the blocked work, so the sanctioned offload pattern is clean
  by construction.
* **ML021** -- an ``await`` inside ``async with <rw-lock>.write():``
  whose target is not the executor offload (``run_in_executor`` /
  ``asyncio.to_thread``).  Entering a nested ``async with`` (the pool's
  ``lease`` checkout) is sanctioned: it parks on pool capacity, not on
  foreign I/O.

Scope and soundness: only ``async def`` bodies are scanned; nested sync
``def``/``lambda`` bodies are skipped (they run wherever they are
called, which the caller's scan judges).  The pass is a lint, not a
proof -- it knows names, not types -- but its allow/deny lists are the
exact idioms ``src/repro/serving/`` commits to, and CI runs it strict
(``multilog lint --self --strict``).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.diagnostics import AnalysisReport

__all__ = ["analyze_async_safety", "lint_async_source", "serving_sources"]

#: bare-name calls that block the event loop.
_BLOCKING_NAMES = frozenset({"open", "input"})

#: ``module.function`` calls that block (receiver is the module name).
_BLOCKING_MODULE_CALLS: dict[str, frozenset[str]] = {
    "time": frozenset({"sleep"}),
    "os": frozenset({"fsync", "remove", "replace", "rename", "listdir",
                     "stat", "system"}),
    "subprocess": frozenset({"run", "call", "check_call", "check_output"}),
    "shutil": frozenset({"copy", "copyfile", "move", "rmtree"}),
}

#: method names that block regardless of receiver -- engine entry points
#: and sync file I/O.  Excused when directly awaited (the async flavour).
_BLOCKING_METHODS = frozenset({
    "ask", "assert_clause", "analyze", "evaluate", "run_stored_queries",
    "recover", "replay", "compact",
    "read_text", "write_text", "read_bytes", "write_bytes",
})

#: sync lock acquisition; ``await lock.acquire()`` is the asyncio flavour.
_LOCK_ACQUIRE = "acquire"

#: awaits that are *allowed* while holding the RW write lock: handing the
#: blocking work to the thread pool is exactly what the lock protects.
_OFFLOAD_METHODS = frozenset({"run_in_executor", "to_thread"})


def serving_sources() -> list[Path]:
    """The Python files of ``repro.serving`` -- the lint's default scope."""
    import repro.serving

    package_dir = Path(repro.serving.__file__).resolve().parent
    return sorted(package_dir.glob("*.py"))


def analyze_async_safety(paths=None) -> AnalysisReport:
    """Lint ``paths`` (files or directories; default: ``repro.serving``)."""
    report = AnalysisReport()
    files: list[Path] = []
    if paths is None:
        files = serving_sources()
    else:
        for entry in paths:
            entry = Path(entry)
            if entry.is_dir():
                files.extend(sorted(entry.glob("**/*.py")))
            else:
                files.append(entry)
    for path in files:
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            report.add("ML000", f"cannot read {path}: {exc}",
                       location=str(path))
            continue
        lint_async_source(source, path.name, report)
    return report


def lint_async_source(source: str, filename: str,
                      report: AnalysisReport) -> None:
    """Lint one module's source text; parse errors become ML000."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add("ML000", f"syntax error: {exc}", location=filename)
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            _FunctionLint(filename, node.name, report).scan(node.body)


def _receiver_mentions_lock(node: ast.expr) -> bool:
    """Heuristic: does the ``.write()`` receiver look like an RW lock?"""
    name = ""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    lowered = name.lower()
    return "rw" in lowered or "lock" in lowered


def _is_write_lock_entry(node: ast.expr) -> bool:
    """``<receiver>.write()`` where the receiver names an RW lock."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "write"
            and not node.args and not node.keywords
            and _receiver_mentions_lock(node.func.value))


def _is_offload_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _OFFLOAD_METHODS)


class _FunctionLint:
    """Scans one ``async def`` body, tracking the RW write-lock scope."""

    def __init__(self, filename: str, function: str, report: AnalysisReport):
        self.filename = filename
        self.function = function
        self.report = report

    def _where(self, node: ast.AST) -> str:
        return f"{self.filename}:{getattr(node, 'lineno', 0)}"

    # -- statements -----------------------------------------------------

    def scan(self, statements, write_held: bool = False) -> None:
        for statement in statements:
            self._scan_statement(statement, write_held)

    def _scan_statement(self, statement: ast.stmt, write_held: bool) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # its body runs (and is judged) elsewhere
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            held = write_held
            for item in statement.items:
                self._scan_expression(item.context_expr, write_held)
                if (isinstance(statement, ast.AsyncWith)
                        and _is_write_lock_entry(item.context_expr)):
                    held = True
            self.scan(statement.body, held)
            return
        for _field, value in ast.iter_fields(statement):
            if isinstance(value, ast.expr):
                self._scan_expression(value, write_held)
            elif isinstance(value, ast.stmt):
                self._scan_statement(value, write_held)
            elif isinstance(value, list):
                for child in value:
                    if isinstance(child, ast.stmt):
                        self._scan_statement(child, write_held)
                    elif isinstance(child, ast.expr):
                        self._scan_expression(child, write_held)
                    elif isinstance(child, ast.excepthandler):
                        self.scan(child.body, write_held)

    # -- expressions ----------------------------------------------------

    def _scan_expression(self, node: ast.expr, write_held: bool,
                         awaited: bool = False) -> None:
        if isinstance(node, ast.Await):
            if write_held and not _is_offload_call(node.value):
                self.report.add(
                    "ML021",
                    f"await while holding the RW lock's write side in "
                    f"async {self.function}(): every reader and writer is "
                    f"stalled until this completes",
                    location=self._where(node),
                    hint="offload via loop.run_in_executor(...) or move "
                         "the await outside the write lock")
            self._scan_expression(node.value, write_held, awaited=True)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred: judged where it is called
        if isinstance(node, ast.Call):
            self._check_call(node, awaited)
            self._scan_expression(node.func, write_held)
            for argument in node.args:
                self._scan_expression(argument, write_held)
            for keyword in node.keywords:
                self._scan_expression(keyword.value, write_held)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expression(child, write_held)
            elif isinstance(child, ast.comprehension):
                self._scan_expression(child.iter, write_held)
                for condition in child.ifs:
                    self._scan_expression(condition, write_held)

    def _check_call(self, node: ast.Call, awaited: bool) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _BLOCKING_NAMES:
                self._blocking(node, f"{func.id}()")
            return
        if not isinstance(func, ast.Attribute):
            return
        attr = func.attr
        if isinstance(func.value, ast.Name):
            module_blocked = _BLOCKING_MODULE_CALLS.get(func.value.id)
            if module_blocked and attr in module_blocked:
                self._blocking(node, f"{func.value.id}.{attr}()")
                return
        if awaited:
            return  # the async flavour of the name
        if attr in _BLOCKING_METHODS:
            self._blocking(node, f".{attr}()")
        elif attr == _LOCK_ACQUIRE and not _non_blocking_acquire(node):
            self._blocking(node, ".acquire()")

    def _blocking(self, node: ast.Call, what: str) -> None:
        self.report.add(
            "ML020",
            f"blocking call {what} inside async {self.function}(): the "
            f"event loop stalls for its full duration",
            location=self._where(node),
            hint="offload it: await loop.run_in_executor(pool, "
                 "functools.partial(...))")


def _non_blocking_acquire(node: ast.Call) -> bool:
    """``lock.acquire(blocking=False)`` / ``acquire(False)`` never blocks."""
    for keyword in node.keywords:
        if keyword.arg == "blocking":
            return (isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is False)
    if node.args:
        first = node.args[0]
        return isinstance(first, ast.Constant) and first.value is False
    return False
