"""Compile-time program analysis for MultiLog and plain Datalog.

The analyzer (``multilog lint``, :meth:`MultiLogSession.analyze`,
``evaluate(..., analyze=True)``) runs every check up front and reports
*all* findings as stable-coded diagnostics instead of failing on the
first, the way the engine's own guards do:

======  ========  ====================================================
code    severity  meaning
======  ========  ====================================================
ML000   error     parse error
ML001   error     not stratifiable (recursion through negation)
ML002   error     unsafe rule: head variable unbound
ML003   error     unsafe rule: negated/built-in variable unbound
ML004   error     arity clash
ML005   error     undeclared security label (Def. 5.3, cond. 2)
ML006   error     lattice not self-contained (Def. 5.3, cond. 1)
ML007   error     [[Lambda]] not a partial order (Def. 5.3, cond. 3)
ML008   warning   potential downward information flow
ML009   warning   surprise-story reconstruction risk
ML010   warning   dead predicate (unreachable from Q)
ML011   info      unused security level
ML012   info      belief feedback forces level specialization
ML013   error     unknown belief mode
======  ========  ====================================================

See ``docs/ANALYSIS.md`` for each code with a minimal trigger.
"""

from repro.analysis.analyzer import analyze_database, analyze_program
from repro.analysis.arity import (
    ArityClash,
    database_arity_clashes,
    program_arity_clashes,
)
from repro.analysis.deadcode import (
    dead_database_predicates,
    dead_predicates,
    unused_levels,
)
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    code_title,
    default_severity,
)
from repro.analysis.flow import (
    FlowFinding,
    SurpriseRisk,
    belief_feedback,
    declared_modes,
    downward_flows,
    surprise_risks,
    unknown_modes,
)
from repro.analysis.graph import DependencyGraph, Edge, render_cycle

__all__ = [
    "AnalysisReport",
    "ArityClash",
    "CODES",
    "DependencyGraph",
    "Diagnostic",
    "Edge",
    "FlowFinding",
    "Severity",
    "SurpriseRisk",
    "analyze_database",
    "analyze_program",
    "belief_feedback",
    "code_title",
    "database_arity_clashes",
    "dead_database_predicates",
    "dead_predicates",
    "declared_modes",
    "default_severity",
    "downward_flows",
    "program_arity_clashes",
    "render_cycle",
    "surprise_risks",
    "unknown_modes",
    "unused_levels",
]
