"""Compile-time program analysis for MultiLog and plain Datalog.

The analyzer (``multilog lint``, :meth:`MultiLogSession.analyze`,
``evaluate(..., analyze=True)``) runs every check up front and reports
*all* findings as stable-coded diagnostics instead of failing on the
first, the way the engine's own guards do:

======  ========  ====================================================
code    severity  meaning
======  ========  ====================================================
ML000   error     parse error
ML001   error     not stratifiable (recursion through negation)
ML002   error     unsafe rule: head variable unbound
ML003   error     unsafe rule: negated/built-in variable unbound
ML004   error     arity clash
ML005   error     undeclared security label (Def. 5.3, cond. 2)
ML006   error     lattice not self-contained (Def. 5.3, cond. 1)
ML007   error     [[Lambda]] not a partial order (Def. 5.3, cond. 3)
ML008   warning   potential downward information flow
ML009   warning   surprise-story reconstruction risk
ML010   warning   dead predicate (unreachable from Q)
ML011   info      unused security level
ML012   info      belief feedback forces level specialization
ML013   error     unknown belief mode
ML014   error     unsound compiled plan (codegen vs. rule semantics)
ML015   error     guard evaluated before its variables are bound
ML016   warning   dead op in compiled plan pipeline
ML017   warning   statically-empty relation (no rule can ever fire)
ML018   info      delta not monotone: needs DRed-style overdeletion
ML019   warning   built-in guard can never be satisfied
ML020   error     blocking call inside an async function
ML021   error     await while holding the RW lock's write side
======  ========  ====================================================

ML000--ML013 judge the declarative program.  ML014--ML016 come from the
plan verifier (:mod:`repro.analysis.planverify`), which re-checks every
codegen'd join/batch plan against its rule before the ``exec``;
ML017--ML019 from the binding-mode abstract interpretation
(:mod:`repro.analysis.absint`); ML020/ML021 from the async-safety lint
(:mod:`repro.analysis.asyncsafe`, ``multilog lint --self``) over the
serving layer.  See ``docs/ANALYSIS.md`` for each code with a minimal
trigger.
"""

from repro.analysis.absint import (
    BindingAnalysis,
    analyze_bindings,
    delta_safety,
    lint_bindings,
)
from repro.analysis.analyzer import analyze_database, analyze_program
from repro.analysis.asyncsafe import (
    analyze_async_safety,
    lint_async_source,
    serving_sources,
)
from repro.analysis.arity import (
    ArityClash,
    database_arity_clashes,
    program_arity_clashes,
)
from repro.analysis.deadcode import (
    dead_database_predicates,
    dead_predicates,
    unused_levels,
)
from repro.analysis.diagnostics import (
    ANALYZER_VERSION,
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    code_title,
    default_severity,
    fingerprint,
)
from repro.analysis.flow import (
    FlowFinding,
    SurpriseRisk,
    belief_feedback,
    declared_modes,
    downward_flows,
    surprise_risks,
    unknown_modes,
)
from repro.analysis.graph import DependencyGraph, Edge, render_cycle
from repro.analysis.planverify import verify_plan, verify_plan_source

__all__ = [
    "ANALYZER_VERSION",
    "AnalysisReport",
    "ArityClash",
    "BindingAnalysis",
    "CODES",
    "DependencyGraph",
    "Diagnostic",
    "Edge",
    "FlowFinding",
    "Severity",
    "SurpriseRisk",
    "analyze_async_safety",
    "analyze_bindings",
    "analyze_database",
    "analyze_program",
    "belief_feedback",
    "code_title",
    "database_arity_clashes",
    "dead_database_predicates",
    "dead_predicates",
    "declared_modes",
    "default_severity",
    "delta_safety",
    "downward_flows",
    "fingerprint",
    "lint_async_source",
    "lint_bindings",
    "program_arity_clashes",
    "render_cycle",
    "serving_sources",
    "surprise_risks",
    "unknown_modes",
    "unused_levels",
    "verify_plan",
    "verify_plan_source",
]
