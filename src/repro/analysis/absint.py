"""Binding-mode abstract interpretation over a stratified program.

Approximates every predicate position by a *constant domain* -- either a
finite set of values (at most :data:`MAX_WIDTH`, else widened to TOP) --
and runs the rules to an abstract fixpoint.  Three program properties
fall out:

* **statically-empty relations** (ML017): an IDB predicate whose every
  defining rule is abstractly unsatisfiable can never hold a tuple, a
  strictly stronger verdict than ML010's reachability-based dead code;
* **unsatisfiable built-in guards** (ML019): a guard whose two sides
  have disjoint finite domains (or that compares a term against itself
  contradictorily) kills its rule at compile time;
* **delta safety** (ML018): rules whose incremental deltas are provably
  monotone versus rules that need DRed-style overdeletion when facts are
  retracted -- the classification ROADMAP item 2 (incremental view
  maintenance) consumes.  A rule is delta-monotone iff neither it nor
  anything it transitively depends on derives through negation.

The abstraction is sound in one direction only: "abstractly
unsatisfiable" implies "never fires"; "abstractly satisfiable" implies
nothing.  Negated literals are ignored (a negation can only shrink the
concrete relation, never grow it), so the computed domains always cover
the real least model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.datalog.atoms import Atom, Literal
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable

from repro.analysis.diagnostics import AnalysisReport

__all__ = ["BindingAnalysis", "MAX_WIDTH", "analyze_bindings", "delta_safety",
           "lint_bindings"]

#: Domain width cap: a position tracking more distinct constants than
#: this widens to TOP ("any value") so the fixpoint stays linear.
MAX_WIDTH = 16

#: TOP -- the unconstrained domain.  ``None`` keeps domains hashable.
_TOP = None

_Key = tuple[str, int]


def _join(a, b):
    """Least upper bound of two domains (set union, widened at the cap)."""
    if a is _TOP or b is _TOP:
        return _TOP
    union = a | b
    return _TOP if len(union) > MAX_WIDTH else union


def _meet(a, b):
    """Greatest lower bound (set intersection; TOP is the identity)."""
    if a is _TOP:
        return b
    if b is _TOP:
        return a
    return a & b


@dataclass
class BindingAnalysis:
    """The abstract fixpoint: per-position domains + derived verdicts."""

    #: ``(predicate, arity) -> per-position domain`` (frozenset or TOP).
    domains: dict[_Key, list] = field(default_factory=dict)
    #: keys that may hold at least one tuple.
    nonempty: set[_Key] = field(default_factory=set)
    #: rules that can never fire, with the reason.
    dead_rules: list[tuple[Rule, str]] = field(default_factory=list)
    #: ``(rule, guard atom)`` pairs whose guard is unsatisfiable.
    unsat_guards: list[tuple[Rule, Atom]] = field(default_factory=list)

    def binding_pattern(self, predicate: str, arity: int) -> str:
        """``b``/``f`` per position: ``b`` when the abstract domain pins
        the position to exactly one constant, ``f`` otherwise."""
        domains = self.domains.get((predicate, arity))
        if domains is None:
            return "f" * arity
        return "".join(
            "b" if d is not _TOP and len(d) == 1 else "f" for d in domains)

    def is_statically_empty(self, predicate: str, arity: int) -> bool:
        return (predicate, arity) not in self.nonempty


def _key(atom: Atom) -> _Key:
    return (atom.predicate, len(atom.args))


def _guard_unsatisfiable(atom: Atom, var_domains: dict) -> bool:
    """True when no assignment from the abstract domains satisfies the guard.

    Sound, not complete: TOP on either side always satisfies, and value
    pairs that raise (incomparable types) count as satisfying -- the
    runtime raises there, it does not silently filter.
    """
    op = atom.predicate
    left, right = atom.args
    if isinstance(left, Variable) and left == right:
        return op in ("!=", "<", ">")
    sides = []
    for term in (left, right):
        if isinstance(term, Constant):
            sides.append(frozenset({term.value}))
        else:
            sides.append(var_domains.get(term, _TOP))
    a, b = sides
    if a is _TOP or b is _TOP:
        return False
    for x in a:
        for y in b:
            try:
                if _eval_builtin(op, x, y):
                    return False
            except TypeError:
                return False
    return True


def _eval_builtin(op: str, a, b) -> bool:
    if op == "=":
        return bool(a == b)
    if op == "!=":
        return bool(a != b)
    if op == "<":
        return bool(a < b)
    if op == "<=":
        return bool(a <= b)
    if op == ">":
        return bool(a > b)
    return bool(a >= b)


def _abstract_body(rule: Rule, domains: dict, nonempty: set):
    """Abstractly evaluate ``rule``'s body.

    Returns ``(var_domains, None)`` when the body may be satisfiable, or
    ``(None, reason)`` when it provably is not; ``reason`` is either the
    string ``"empty"`` (an empty body relation) or the offending guard
    :class:`Atom`.
    """
    var_domains: dict[Variable, object] = {}
    for literal in rule.body:
        atom = literal.atom
        if atom.is_builtin:
            if len(atom.args) == 2 and _guard_unsatisfiable(atom, var_domains):
                return None, atom
            continue
        if not literal.positive:
            continue  # negation only shrinks; ignore (sound over-approx.)
        key = _key(atom)
        if key not in nonempty:
            return None, "empty"
        position_domains = domains.get(key) or [_TOP] * len(atom.args)
        for position, term in enumerate(atom.args):
            domain = position_domains[position]
            if isinstance(term, Constant):
                if domain is not _TOP and term.value not in domain:
                    return None, "empty"
            else:
                narrowed = _meet(var_domains.get(term, _TOP), domain)
                if narrowed is not _TOP and not narrowed:
                    return None, "empty"
                var_domains[term] = narrowed
    return var_domains, None


def analyze_bindings(program: Program) -> BindingAnalysis:
    """Run the abstract interpretation to fixpoint over ``program``."""
    analysis = BindingAnalysis()
    domains = analysis.domains
    nonempty = analysis.nonempty

    for fact in program.facts:
        key = _key(fact)
        nonempty.add(key)
        position_domains = domains.setdefault(key, [frozenset()] * len(fact.args))
        for position, term in enumerate(fact.args):
            value = term.value if isinstance(term, Constant) else _TOP
            current = position_domains[position]
            position_domains[position] = (
                _TOP if value is _TOP else _join(current, frozenset({value})))

    changed = True
    while changed:
        changed = False
        for rule in program.rules:
            var_domains, _ = _abstract_body(rule, domains, nonempty)
            if var_domains is None:
                continue
            key = _key(rule.head)
            if key not in nonempty:
                nonempty.add(key)
                changed = True
            position_domains = domains.setdefault(
                key, [frozenset()] * len(rule.head.args))
            for position, term in enumerate(rule.head.args):
                if isinstance(term, Constant):
                    update = frozenset({term.value})
                else:
                    update = var_domains.get(term, _TOP)
                current = position_domains[position]
                joined = _TOP if update is _TOP else _join(current, update)
                if joined != current:
                    position_domains[position] = joined
                    changed = True

    for rule in program.rules:
        var_domains, reason = _abstract_body(rule, domains, nonempty)
        if var_domains is not None:
            continue
        if isinstance(reason, Atom):
            analysis.unsat_guards.append((rule, reason))
            analysis.dead_rules.append(
                (rule, f"guard {reason!r} is unsatisfiable"))
        else:
            analysis.dead_rules.append(
                (rule, "a body relation is statically empty"))
    return analysis


def delta_safety(program: Program) -> dict[str, str]:
    """``predicate -> "monotone" | "overdelete"`` for every IDB predicate.

    A predicate needs DRed-style overdeletion when any of its rules uses
    negation, or when it (transitively) consumes a predicate that does:
    retracting a fact may then *grow* a relation downstream, so deltas
    alone cannot maintain it.  Everything else is monotone -- inserted
    facts only ever add derived tuples, so semi-naive deltas suffice.
    """
    tainted: set[str] = set()
    consumers: dict[str, set[str]] = {}
    for rule in program.rules:
        head = rule.head.predicate
        if rule.negative_body():
            tainted.add(head)
        for literal in rule.body:
            if not literal.atom.is_builtin:
                consumers.setdefault(literal.predicate, set()).add(head)
    frontier = list(tainted)
    while frontier:
        tainted_pred = frontier.pop()
        for consumer in consumers.get(tainted_pred, ()):
            if consumer not in tainted:
                tainted.add(consumer)
                frontier.append(consumer)
    return {
        predicate: "overdelete" if predicate in tainted else "monotone"
        for predicate in program.idb_predicates()
    }


def lint_bindings(program: Program, report: AnalysisReport) -> BindingAnalysis:
    """Surface the abstract verdicts as ML017/ML018/ML019 diagnostics."""
    analysis = analyze_bindings(program)

    dead_by_head: dict[_Key, list] = {}
    for rule, reason in analysis.dead_rules:
        dead_by_head.setdefault(_key(rule.head), []).append((rule, reason))
    for predicate in sorted(program.idb_predicates()):
        for key in sorted(k for k in dead_by_head if k[0] == predicate):
            if key in analysis.nonempty:
                continue
            arity = key[1]
            report.add(
                "ML017",
                f"relation {predicate}/{arity} is statically empty: no "
                f"defining rule can ever fire and no facts exist",
                location=f"predicate {predicate}",
                hint="every body is unsatisfiable (empty relation or dead "
                     "guard); the rules are unreachable code")

    for rule, atom in analysis.unsat_guards:
        report.add(
            "ML019",
            f"built-in guard {atom!r} can never be satisfied; rule "
            f"{rule!r} never fires",
            location=f"rule {rule!r}",
            hint="the guard's sides have disjoint constant domains")

    safety = delta_safety(program)
    for rule in program.rules:
        if safety.get(rule.head.predicate) == "overdelete":
            why = ("uses negation" if rule.negative_body()
                   else "depends on a negation-derived predicate")
            report.add(
                "ML018",
                f"rule for {rule.head.predicate!r} {why}: incremental "
                f"deltas are not monotone and need DRed-style overdeletion",
                location=f"rule {rule!r}",
                hint="see ROADMAP item 2 (incremental maintenance)")
    return analysis
