"""Static verification of codegen'd join/batch plans (ML014/ML015/ML016).

The compiled (:class:`~repro.datalog.plan.CompiledRule`) and vectorized
(:class:`~repro.datalog.plan.BatchRule`) strategies ``exec`` generated
Python.  That source is trusted nowhere else in the system: a bug in the
emitters -- or a corrupted plan -- would silently produce wrong answers
behind the differential tests' backs.  This pass re-checks every plan
against the declarative semantics of its rule *before* the ``exec``:

* **structural** -- walk ``rule.body`` next to the recorded access paths
  and simulate variable binding: every index/batch probe may only key on
  constants and variables bound by *earlier* positive literals (join-key
  soundness, ML014), guards and anti-joins must come after all their
  variables are bound (ML015), and the access-path kinds must match the
  literal kinds (ML014).  Duplicate literals and tautological guards are
  dead ops (ML016).
* **definite assignment** -- parse the generated source with :mod:`ast`
  and prove every loaded name is a parameter, an earlier local
  assignment in an enclosing block, an emitter-namespace constant, or a
  builtin (ML014): the generated function can never hit ``NameError``
  or read a stale slot.
* **head coverage & dedup** -- the emitted head projection has exactly
  the rule's head arity with every head variable bound (ML014), and a
  batch plan's merged result is duplicate-free: its returns must be set
  comprehensions or provably ≤1-row literals (ML014).

:func:`verify_plan_source` is the core check over ``(rule, source,
access_paths)``; :func:`verify_plan` re-verifies an already-constructed
plan object (used by the differential-corpus CI job).  Wiring into the
compile path lives in :mod:`repro.datalog.plan` behind
``verify_plans=True`` / the ``MULTILOG_VERIFY_PLANS`` env var, with a
memo keyed on the generated source so production pays one check per
distinct plan.
"""

from __future__ import annotations

import ast
import builtins
import re

from repro.analysis.diagnostics import AnalysisReport
from repro.datalog.atoms import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable

__all__ = ["verify_plan", "verify_plan_source"]

#: access kinds the row emitter may record, per literal kind.
_ROW_POSITIVE = {"index-probe", "full-scan"}
_BATCH_POSITIVE = {"batch-probe", "batch-scan"}

#: emitter-namespace names when the real namespace is unavailable
#: (post-hoc verification of a stored plan): interned constants plus the
#: guard helpers.  Everything else the emitters reference is a local.
_DEFAULT_NAMESPACE = re.compile(r"C\d+$")
_HELPERS = frozenset({"_lt", "_le", "_gt", "_ge"})

#: builtins whose guard is a tautology / contradiction on identical terms.
_ALWAYS_TRUE_ON_SELF = frozenset({"=", "<=", ">="})


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def verify_plan(plan, kind: str | None = None) -> AnalysisReport:
    """Verify an already-built ``CompiledRule`` / ``BatchRule`` plan.

    The plan's stored ``source``/``access_paths`` describe its main
    (non-delta) variant, so this checks exactly what ``fire(db)`` runs.
    """
    if kind is None:
        kind = "batch" if hasattr(plan, "head_arity") else "row"
    return verify_plan_source(plan.rule, plan.source, plan.access_paths, kind,
                              delta_position=None)


def verify_plan_source(rule: Rule, source: str, access_paths,
                       kind: str, namespace=None,
                       delta_position: int | None = None,
                       _delta_known: bool = True) -> AnalysisReport:
    """Check one generated plan against its rule; never raises."""
    report = AnalysisReport()
    where = f"{kind} plan for rule {rule!r}"
    _check_structure(rule, tuple(access_paths), kind, report, where,
                     delta_position, _delta_known)
    names = _namespace_names(namespace)
    _check_source(rule, source, kind, names, report, where)
    return report


def _namespace_names(namespace):
    if namespace is None:
        return None  # fall back to the _DEFAULT_NAMESPACE pattern
    return frozenset(namespace)


# ---------------------------------------------------------------------------
# structural pass: rule body vs. recorded access paths
# ---------------------------------------------------------------------------

def _literal_vars(literal: Literal) -> set[Variable]:
    return {t for t in literal.atom.args if isinstance(t, Variable)}


def _check_structure(rule: Rule, paths: tuple, kind: str,
                     report: AnalysisReport, where: str,
                     delta_position: int | None, delta_known: bool) -> None:
    body = rule.body
    if len(paths) != len(body):
        report.add("ML014",
                   f"plan records {len(paths)} access paths for "
                   f"{len(body)} body literals",
                   location=where,
                   hint="the op pipeline does not cover the rule body")
        return
    positive_kinds = _BATCH_POSITIVE if kind == "batch" else _ROW_POSITIVE
    bound: set[Variable] = set()
    seen_literals: list[Literal] = []
    for index, (literal, path) in enumerate(zip(body, paths)):
        atom = literal.atom
        access = path.get("access")
        if literal in seen_literals:
            report.add("ML016",
                       f"literal {literal!r} repeats an earlier body literal; "
                       f"the op is dead",
                       location=where,
                       hint="drop the duplicate literal from the rule")
        seen_literals.append(literal)
        if atom.is_builtin:
            if access != "guard":
                report.add("ML014",
                           f"built-in {atom!r} compiled as {access!r}, "
                           f"expected a guard",
                           location=where)
            if not _literal_vars(literal) <= bound:
                unbound = sorted(v.name for v in _literal_vars(literal) - bound)
                report.add("ML015",
                           f"guard {atom!r} placed before variable(s) "
                           f"{unbound} are bound",
                           location=where,
                           hint="guards must follow the literals binding "
                                "their variables")
            _lint_trivial_guard(atom, report, where)
            continue
        if not literal.positive:
            if access != "anti-join":
                report.add("ML014",
                           f"negated literal {literal!r} compiled as "
                           f"{access!r}, expected an anti-join",
                           location=where)
            if not _literal_vars(literal) <= bound:
                unbound = sorted(v.name for v in _literal_vars(literal) - bound)
                report.add("ML015",
                           f"anti-join {literal!r} placed before variable(s) "
                           f"{unbound} are bound",
                           location=where)
            continue
        # positive relation literal
        if access not in positive_kinds:
            report.add("ML014",
                       f"literal {literal!r} compiled as {access!r}, expected "
                       f"one of {sorted(positive_kinds)}",
                       location=where)
            bound |= _literal_vars(literal)
            continue
        probeable = {
            position for position, term in enumerate(atom.args)
            if isinstance(term, Constant) or term in bound
        }
        probed = set(path.get("positions", ()))
        if access in ("index-probe", "batch-probe") and not probed:
            report.add("ML014",
                       f"probe on {literal!r} records no key positions",
                       location=where)
        illegal = probed - probeable
        if illegal:
            report.add("ML014",
                       f"probe on {literal!r} keys on unbound position(s) "
                       f"{sorted(illegal)}",
                       location=where,
                       hint="a join key must be a constant or bound by an "
                            "earlier literal")
        if delta_known:
            expected_source = "delta" if index == delta_position else "db"
            if path.get("source", "db") != expected_source:
                report.add("ML014",
                           f"literal {literal!r} scans "
                           f"{path.get('source')!r}, expected "
                           f"{expected_source!r}",
                           location=where)
        bound |= _literal_vars(literal)
    head_vars = {t for t in rule.head.args if isinstance(t, Variable)}
    if not head_vars <= bound:
        unbound = sorted(v.name for v in head_vars - bound)
        report.add("ML014",
                   f"head variable(s) {unbound} are not bound by the op "
                   f"pipeline",
                   location=where,
                   hint="the plan cannot construct the head row")


def _lint_trivial_guard(atom, report: AnalysisReport, where: str) -> None:
    """ML016 for guards decidable at compile time (always-true only).

    Always-*false* identical-term guards (``X < X``) are left to the
    abstract interpreter's ML019, which judges the whole rule dead.
    """
    left, right = atom.args
    if left == right and atom.predicate in _ALWAYS_TRUE_ON_SELF:
        report.add("ML016",
                   f"guard {atom!r} is always true; the op is dead",
                   location=where,
                   hint="remove the tautological comparison")
        return
    if isinstance(left, Constant) and isinstance(right, Constant):
        try:
            verdict = _eval_builtin(atom.predicate, left.value, right.value)
        except TypeError:
            return
        if verdict:
            report.add("ML016",
                       f"constant guard {atom!r} is always true; the op is dead",
                       location=where,
                       hint="remove the constant comparison")


def _eval_builtin(op: str, a, b) -> bool:
    if op == "=":
        return bool(a == b)
    if op == "!=":
        return bool(a != b)
    if op == "<":
        return bool(a < b)
    if op == "<=":
        return bool(a <= b)
    if op == ">":
        return bool(a > b)
    return bool(a >= b)


# ---------------------------------------------------------------------------
# source pass: definite assignment + head shape + dedup-before-merge
# ---------------------------------------------------------------------------

def _check_source(rule: Rule, source: str, kind: str, namespace,
                  report: AnalysisReport, where: str) -> None:
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        report.add("ML014", f"generated source does not parse: {exc}",
                   location=where)
        return
    if (len(tree.body) != 1
            or not isinstance(tree.body[0], ast.FunctionDef)
            or tree.body[0].name != "_fire"):
        report.add("ML014",
                   "generated source is not a single `_fire` function",
                   location=where)
        return
    fn = tree.body[0]
    defined = {arg.arg for arg in fn.args.args}
    checker = _AssignmentChecker(namespace, report, where)
    checker.check_block(fn.body, defined)
    _check_head_shape(rule, fn, kind, report, where)


class _AssignmentChecker:
    """Definite-assignment walk over the generated ``_fire`` body.

    The emitters produce a restricted statement language (assignments,
    ``for``, ``if``-guards with ``continue``/``return`` bodies,
    ``return``, aug-assign on counters); anything outside it is itself an
    ML014 finding, so the walk can stay exact instead of conservative.
    """

    def __init__(self, namespace, report: AnalysisReport, where: str):
        self.namespace = namespace
        self.report = report
        self.where = where

    def _known_global(self, name: str) -> bool:
        if self.namespace is not None:
            if name in self.namespace:
                return True
        elif _DEFAULT_NAMESPACE.match(name) or name in _HELPERS:
            return True
        return hasattr(builtins, name)

    def _unbound(self, name: str, node: ast.AST) -> None:
        self.report.add(
            "ML014",
            f"generated code reads {name!r} before any assignment "
            f"(line {getattr(node, 'lineno', '?')})",
            location=self.where,
            hint="the op pipeline uses a slot it never filled")

    def check_block(self, statements, defined: set[str]) -> None:
        """Check a statement block; mutates ``defined`` with its bindings."""
        for statement in statements:
            self.check_statement(statement, defined)

    def check_statement(self, statement, defined: set[str]) -> None:
        if isinstance(statement, ast.Assign):
            self.check_expression(statement.value, defined)
            for target in statement.targets:
                self._bind_target(target, defined)
        elif isinstance(statement, ast.AugAssign):
            self.check_expression(statement.value, defined)
            if isinstance(statement.target, ast.Name):
                if statement.target.id not in defined:
                    self._unbound(statement.target.id, statement)
            else:
                self.check_expression(statement.target, defined)
        elif isinstance(statement, ast.For):
            self.check_expression(statement.iter, defined)
            inner = set(defined)
            self._bind_target(statement.target, inner)
            self.check_block(statement.body, inner)
        elif isinstance(statement, ast.If):
            self.check_expression(statement.test, defined)
            self.check_block(statement.body, set(defined))
            self.check_block(statement.orelse, set(defined))
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self.check_expression(statement.value, defined)
        elif isinstance(statement, ast.Expr):
            self.check_expression(statement.value, defined)
        elif not isinstance(statement, (ast.Continue, ast.Pass, ast.Break)):
            self.report.add(
                "ML014",
                f"unexpected statement {type(statement).__name__} in "
                f"generated plan (line {getattr(statement, 'lineno', '?')})",
                location=self.where)

    def _bind_target(self, target, defined: set[str]) -> None:
        if isinstance(target, ast.Name):
            defined.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, defined)
        else:  # attribute/subscript target: reads its base
            self.check_expression(target, defined)

    def check_expression(self, node, defined: set[str]) -> None:
        if isinstance(node, ast.Name):
            if node.id not in defined and not self._known_global(node.id):
                self._unbound(node.id, node)
            return
        if isinstance(node, (ast.SetComp, ast.ListComp, ast.GeneratorExp,
                             ast.DictComp)):
            inner = set(defined)
            for index, generator in enumerate(node.generators):
                self.check_expression(generator.iter,
                                      defined if index == 0 else inner)
                self._bind_target(generator.target, inner)
                for condition in generator.ifs:
                    self.check_expression(condition, inner)
            if isinstance(node, ast.DictComp):
                self.check_expression(node.key, inner)
                self.check_expression(node.value, inner)
            else:
                self.check_expression(node.elt, inner)
            return
        if isinstance(node, ast.Lambda):
            inner = set(defined) | {arg.arg for arg in node.args.args}
            self.check_expression(node.body, inner)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.expr, ast.keyword)):
                value = child.value if isinstance(child, ast.keyword) else child
                self.check_expression(value, defined)


def _check_head_shape(rule: Rule, fn: ast.FunctionDef, kind: str,
                      report: AnalysisReport, where: str) -> None:
    """Head arity of every emitted projection + batch dedup-before-merge."""
    arity = len(rule.head.args)
    if kind == "row":
        for node in ast.walk(fn):
            if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                    and node.func.id == "_append" and node.args):
                row = node.args[0]
                if isinstance(row, ast.Tuple) and len(row.elts) != arity:
                    report.add("ML014",
                               f"emitted head row has {len(row.elts)} "
                               f"columns, head arity is {arity}",
                               location=where)
        return
    for node in ast.walk(fn):
        if not isinstance(node, ast.Return) or node.value is None:
            continue
        value = node.value
        if isinstance(value, ast.SetComp):
            _check_batch_row(value.elt, arity, report, where)
        elif isinstance(value, ast.List):
            if len(value.elts) > 1:
                report.add("ML014",
                           "batch plan returns a multi-row list without "
                           "dedup before merge",
                           location=where,
                           hint="project through a set comprehension")
            for element in value.elts:
                _check_batch_row(element, arity, report, where)
        elif isinstance(value, ast.IfExp):
            # ``[()] if batch else []`` -- the zero-arity head.
            for arm in (value.body, value.orelse):
                if not (isinstance(arm, ast.List) and len(arm.elts) <= 1):
                    report.add("ML014",
                               "batch plan's conditional return is not a "
                               "≤1-row list",
                               location=where)
        elif isinstance(value, (ast.ListComp, ast.GeneratorExp)):
            report.add("ML014",
                       "batch plan merges a list comprehension without "
                       "dedup",
                       location=where,
                       hint="the merged batch must be duplicate-free "
                            "(set comprehension)")
        # a bare Name / Call return never appears in emitted batch plans;
        # the statement whitelist above already flagged exotic shapes.


def _check_batch_row(element, arity: int, report: AnalysisReport,
                     where: str) -> None:
    if isinstance(element, ast.Tuple) and len(element.elts) != arity:
        report.add("ML014",
                   f"batch head row has {len(element.elts)} columns, head "
                   f"arity is {arity}",
                   location=where)
