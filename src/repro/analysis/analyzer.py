"""The compile-time analyzer: one pass, every finding, before evaluation.

Two entry points mirror the two source languages:

* :func:`analyze_program` lints a plain Datalog :class:`~repro.datalog.
  rules.Program` -- safety, arity, stratifiability, optional dead code.

* :func:`analyze_database` lints a full MultiLog database ``Delta =
  <Lambda, Sigma, Pi, Q>``: the Definition 5.3 admissibility conditions
  become diagnostics (ML005/ML006/ML007) instead of exceptions, safety
  and arity run over the source clauses, the security-flow pass
  (ML008/ML009/ML012/ML013) consults the same oracles the runtime uses,
  dead code is judged against ``Q`` (ML010/ML011), and finally the tau
  reduction is stratified per clearance (ML001) -- which also warms the
  memoized :func:`~repro.multilog.reduction.translate` cache, so a
  following evaluation pays nothing extra.

Unlike the engine's fail-fast checks, the analyzer never raises on bad
input: every defect lands in the returned :class:`~repro.analysis.
diagnostics.AnalysisReport`.  The whole pass runs inside an ``analyze``
span of the ambient observation context, so ``:trace`` and benchmarks
see analysis time as its own line item.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.datalog.rules import Program
from repro.datalog.stratify import stratify
from repro.errors import (
    AdmissibilityError,
    MultiLogError,
    StratificationError,
    UnknownModeError,
)
from repro.multilog.admissibility import (
    LatticeContext,
    _labels_used_in_sigma,
    lambda_meaning,
)
from repro.multilog.ast import Clause, LAtom, MultiLogDatabase
from repro.obs.context import current as _current_obs

from repro.analysis.absint import delta_safety, lint_bindings
from repro.analysis.arity import database_arity_clashes, program_arity_clashes
from repro.analysis.deadcode import (
    dead_database_predicates,
    dead_predicates,
    unused_levels,
)
from repro.analysis.diagnostics import AnalysisReport, fingerprint
from repro.analysis.flow import (
    belief_feedback,
    downward_flows,
    surprise_risks,
    unknown_modes,
)
from repro.analysis.graph import DependencyGraph, render_cycle
from repro.analysis.safety import lint_database_safety, lint_program_safety

#: Matches MultiLogSession's implicit single-level lattice.
_DEFAULT_LEVEL = "system"


# ---------------------------------------------------------------------------
# plain Datalog
# ---------------------------------------------------------------------------

def analyze_program(program: Program, roots: Iterable[str] = ()) -> AnalysisReport:
    """Lint a plain Datalog program; ``roots`` enable the dead-code pass."""
    report = AnalysisReport()
    report.program_hash = fingerprint(program.pretty())
    with _current_obs().recorder.span("analyze", language="datalog"):
        lint_program_safety(program, report)
        for clash in program_arity_clashes(program):
            report.add("ML004", clash.message(),
                       location=clash.occurrences[0][1],
                       hint="rename one of the populations or fix the argument list")
        _lint_stratification(program, report)
        for predicate in dead_predicates(program, roots):
            report.add("ML010",
                       f"predicate {predicate!r} is unreachable from the "
                       f"query root(s) {sorted(roots)}",
                       location=f"predicate {predicate}",
                       hint="delete the rules/facts or query the predicate")
        lint_bindings(program, report)
    return report


def _lint_stratification(program: Program, report: AnalysisReport,
                         location: str = "") -> None:
    """ML001 with a named cycle witness when ``program`` fails to stratify."""
    try:
        stratify(program)
    except StratificationError as exc:
        graph = DependencyGraph.from_program(program)
        cycles = graph.negation_cycles()
        if cycles:
            for cycle in cycles:
                report.add("ML001",
                           f"recursion through negation: {render_cycle(cycle)}",
                           location=location or f"predicate {cycle[0].head}",
                           hint="break the cycle or move the negation out of it")
        else:  # defensive: stratify refused for a reason the graph missed
            report.add("ML001", str(exc), location=location)


# ---------------------------------------------------------------------------
# MultiLog databases
# ---------------------------------------------------------------------------

def analyze_database(db: MultiLogDatabase,
                     clearance: str | None = None) -> AnalysisReport:
    """Lint a MultiLog database end to end; never raises on bad input."""
    report = AnalysisReport()
    report.program_hash = fingerprint(_database_text(db))
    with _current_obs().recorder.span("analyze", language="multilog",
                                      clearance=clearance or ""):
        db = _with_default_lattice(db)
        context = _lint_lattice(db, report)
        lint_database_safety(db, report)
        for clash in database_arity_clashes(db):
            report.add("ML004", clash.message(),
                       location=clash.occurrences[0][1],
                       hint="rename one of the populations or fix the argument list")
        for mode, where in unknown_modes(db):
            report.add("ML013",
                       f"belief mode {mode!r} is neither built-in (fir/opt/cau) "
                       f"nor defined by a bel/7 rule in Pi",
                       location=where,
                       hint="define the mode with a bel/7 rule or use a built-in one")
        if context is None:
            return report
        _lint_flows(db, context, report)
        _lint_dead_code(db, context, report)
        if report.ok:
            _lint_reduction(db, context, clearance, report)
    return report


def _database_text(db: MultiLogDatabase) -> str:
    """A canonical text of ``Delta = <Lambda, Sigma, Pi, Q>`` for hashing."""
    sections = []
    for clauses in (db.lattice_clauses, db.secured_clauses, db.plain_clauses,
                    db.queries):
        sections.append("\n".join(str(clause) for clause in clauses))
    return "\n%%\n".join(sections)


def _with_default_lattice(db: MultiLogDatabase) -> MultiLogDatabase:
    """Mirror the session's implicit one-level lattice for bare databases."""
    if db.lattice_clauses:
        return db
    from repro.datalog.terms import Constant
    return MultiLogDatabase(
        lattice_clauses=[Clause(LAtom(Constant(_DEFAULT_LEVEL)))],
        secured_clauses=list(db.secured_clauses),
        plain_clauses=list(db.plain_clauses),
        queries=list(db.queries),
    )


def _lint_lattice(db: MultiLogDatabase,
                  report: AnalysisReport) -> LatticeContext | None:
    """Definition 5.3 as diagnostics; the context when the lattice stands."""
    try:
        context = lambda_meaning(db)
    except AdmissibilityError as exc:
        message = str(exc)
        if "partial order" in message:
            code, hint = "ML007", "remove the ordering cycle from Lambda"
        elif "undeclared level" in message:
            code, hint = "ML005", "assert level(l). for every level order/2 mentions"
        else:
            code, hint = "ML006", \
                "Lambda clauses may only depend on level/1 and order/2"
        report.add(code, message, location="Lambda", hint=hint)
        return None
    undeclared = _labels_used_in_sigma(db) - context.lattice.levels
    if undeclared:
        report.add(
            "ML005",
            f"Sigma uses security label(s) {sorted(undeclared)} not asserted by "
            "[[Lambda]] (Definition 5.3, condition 2)",
            location="Sigma",
            hint="declare the label(s) in Lambda or fix the clause",
        )
        return None
    return context


def _lint_flows(db: MultiLogDatabase, context: LatticeContext,
                report: AnalysisReport) -> None:
    from repro.analysis.diagnostics import Severity

    for finding in downward_flows(db, context):
        report.add("ML008", finding.message(),
                   location=f"clause {finding.clause}",
                   hint="store the head at a level dominating every body level")
    for risk in surprise_risks(db, context):
        severity = Severity.WARNING if risk.reconstructing_rules else Severity.INFO
        report.add("ML009", risk.message(),
                   location=f"predicate {risk.pred}, level {risk.level}",
                   hint="cover the null with a believable tuple at that level, "
                        "or reclassify the key",
                   severity=severity)
    for clause in belief_feedback(db):
        report.add("ML012",
                   f"clause consults beliefs; the reduction will specialize "
                   f"belief levels (slower, but required for soundness)",
                   location=f"clause {clause}")


def _lint_dead_code(db: MultiLogDatabase, context: LatticeContext,
                    report: AnalysisReport) -> None:
    for kind, predicate in dead_database_predicates(db):
        report.add("ML010",
                   f"{kind} predicate {predicate!r} is unreachable from every "
                   f"query in Q",
                   location=f"predicate {predicate}",
                   hint="delete the clauses or add a query that consults them")
    for level in unused_levels(db, context):
        report.add("ML011",
                   f"security level {level!r} classifies no Sigma data and "
                   f"appears in no query",
                   location=f"level {level}",
                   hint="remove the level from Lambda or classify data at it")


def _lint_reduction(db: MultiLogDatabase, context: LatticeContext,
                    clearance: str | None, report: AnalysisReport) -> None:
    """Stratify the tau reduction at each relevant clearance (ML001).

    Runs only on otherwise error-free databases: the reduction of a
    broken database reports noise, not signal.  Successful translations
    stay in :func:`~repro.multilog.reduction.translate`'s memo, so the
    subsequent evaluation reuses them for free.
    """
    from repro.multilog.reduction import translate

    clearances = [clearance] if clearance is not None \
        else sorted(context.lattice.tops())
    for point in clearances:
        try:
            reduced = translate(db, point, context)
        except UnknownModeError as exc:
            report.add("ML013", str(exc), location=f"clearance {point}")
            continue
        except MultiLogError as exc:
            report.add("ML001",
                       f"the reduction at clearance {point!r} cannot be "
                       f"evaluated: {exc}",
                       location=f"clearance {point}")
            continue
        _lint_stratification(reduced.program, report,
                             location=f"reduction at clearance {point!r}")
        _lint_delta_safety(reduced.program, point, report)


def _lint_delta_safety(program: Program, clearance: str,
                       report: AnalysisReport) -> None:
    """One ML018 summary per clearance: the incremental-maintenance cost.

    The tau reduction leans heavily on negation (believability is
    non-monotone by construction), so a per-rule listing would be noise;
    the count of overdeletion-bound predicates is the number ROADMAP
    item 2 needs to size a DRed implementation against.
    """
    safety = delta_safety(program)
    overdelete = sorted(p for p, verdict in safety.items()
                        if verdict == "overdelete")
    if not overdelete:
        return
    report.add(
        "ML018",
        f"reduction at clearance {clearance!r}: {len(overdelete)} of "
        f"{len(safety)} derived predicates need DRed-style overdeletion "
        f"for incremental maintenance (the rest are delta-monotone)",
        location=f"clearance {clearance}",
        hint="see ROADMAP item 2 (incremental maintenance)")
