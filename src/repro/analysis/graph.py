"""Predicate dependency graphs with negation-cycle diagnostics.

:mod:`repro.datalog.stratify` answers *whether* a program stratifies;
this module answers *why not* -- it finds the actual cycle through
negation and renders it (``win -not-> win`` or ``p -> q -not-> p``) so
the diagnostic can name the offending predicates instead of pointing the
user at a fixpoint overflow.

The same graph drives dead-code analysis: :meth:`DependencyGraph.
reachable` walks head -> body edges from a set of query roots.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.datalog.rules import Program


@dataclass(frozen=True)
class Edge:
    """``head`` depends on ``body`` (negatively when ``negative``)."""

    head: str
    body: str
    negative: bool


@dataclass
class DependencyGraph:
    """Predicate-level dependency graph of a Datalog program."""

    nodes: set[str] = field(default_factory=set)
    edges: list[Edge] = field(default_factory=list)

    @classmethod
    def from_program(cls, program: Program) -> "DependencyGraph":
        graph = cls()
        graph.nodes.update(program.predicates())
        seen: set[Edge] = set()
        for rule in program.rules:
            for literal in rule.body:
                if literal.atom.is_builtin:
                    continue
                edge = Edge(rule.head.predicate, literal.predicate, not literal.positive)
                if edge not in seen:
                    seen.add(edge)
                    graph.edges.append(edge)
        return graph

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[str, str, bool]]) -> "DependencyGraph":
        graph = cls()
        for head, body, negative in edges:
            graph.nodes.update((head, body))
            graph.edges.append(Edge(head, body, negative))
        return graph

    # -- adjacency ------------------------------------------------------
    def successors(self) -> dict[str, list[Edge]]:
        """Outgoing edges per node (``head -> [edges to bodies]``)."""
        out: dict[str, list[Edge]] = {node: [] for node in self.nodes}
        for edge in self.edges:
            out.setdefault(edge.head, []).append(edge)
        return out

    # -- reachability ---------------------------------------------------
    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Every predicate reachable from ``roots`` along head -> body edges."""
        adjacency = self.successors()
        seen: set[str] = set()
        queue = deque(root for root in roots if root in self.nodes or root in adjacency)
        seen.update(queue)
        while queue:
            node = queue.popleft()
            for edge in adjacency.get(node, ()):
                if edge.body not in seen:
                    seen.add(edge.body)
                    queue.append(edge.body)
        return seen

    # -- strongly connected components ----------------------------------
    def sccs(self) -> list[set[str]]:
        """Strongly connected components (iterative Tarjan)."""
        adjacency = self.successors()
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        components: list[set[str]] = []

        for start in sorted(self.nodes):
            if start in index:
                continue
            work: list[tuple[str, int]] = [(start, 0)]
            while work:
                node, edge_index = work.pop()
                if edge_index == 0:
                    index[node] = lowlink[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recursed = False
                successors = adjacency.get(node, ())
                for position in range(edge_index, len(successors)):
                    successor = successors[position].body
                    if successor not in index:
                        work.append((node, position + 1))
                        work.append((successor, 0))
                        recursed = True
                        break
                    if successor in on_stack:
                        lowlink[node] = min(lowlink[node], index[successor])
                if recursed:
                    continue
                if lowlink[node] == index[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
                else:
                    # Propagate the lowlink to the parent on the work list.
                    if work:
                        parent = work[-1][0]
                        lowlink[parent] = min(lowlink[parent], lowlink[node])
        return components

    # -- negation cycles ------------------------------------------------
    def negation_cycles(self) -> list[list[Edge]]:
        """Cycles through negation, one witness per offending negative edge.

        An edge ``h -not-> b`` lies on a negation cycle when ``b`` reaches
        ``h`` inside the same strongly connected component.  Each witness
        is the edge list of the full cycle (negative edge first, then a
        shortest path back), ready for :func:`render_cycle`.
        """
        component_of: dict[str, int] = {}
        for position, component in enumerate(self.sccs()):
            for node in component:
                component_of[node] = position
        adjacency = self.successors()
        cycles: list[list[Edge]] = []
        for edge in self.edges:
            if not edge.negative:
                continue
            if component_of.get(edge.head) != component_of.get(edge.body):
                continue
            path = self._shortest_path(edge.body, edge.head, adjacency,
                                       component_of[edge.head])
            if path is not None:
                cycles.append([edge, *path])
        return cycles

    def _shortest_path(self, start: str, target: str,
                       adjacency: dict[str, list[Edge]],
                       component: int | None = None) -> list[Edge] | None:
        """BFS path ``start -> ... -> target`` (``[]`` when they coincide)."""
        if start == target:
            return []
        parents: dict[str, Edge] = {}
        queue = deque([start])
        seen = {start}
        while queue:
            node = queue.popleft()
            for edge in adjacency.get(node, ()):
                if edge.body in seen:
                    continue
                parents[edge.body] = edge
                if edge.body == target:
                    path: list[Edge] = []
                    cursor = target
                    while cursor != start:
                        step = parents[cursor]
                        path.append(step)
                        cursor = step.head
                    path.reverse()
                    return path
                seen.add(edge.body)
                queue.append(edge.body)
        return None


def render_cycle(cycle: list[Edge]) -> str:
    """``p -not-> q -> p`` -- the cycle as an arrow chain."""
    if not cycle:
        return ""
    parts = [cycle[0].head]
    for edge in cycle:
        arrow = "-not->" if edge.negative else "->"
        parts.append(f"{arrow} {edge.body}")
    return " ".join(parts)
