"""Safety (range-restriction) lint over programs and MultiLog clauses.

A thin adapter from :meth:`repro.datalog.rules.Rule.safety_violations`
(which collects *every* defect instead of raising on the first) to
diagnostics: head violations become ``ML002``, negated/built-in literal
violations become ``ML003``.  MultiLog clauses get the source-level
analogue -- every head variable must occur in the body -- reported
against the original clause text rather than its tau-reduction.
"""

from __future__ import annotations

from repro.datalog.rules import Program, SafetyViolation
from repro.multilog.ast import Clause, MultiLogDatabase
from repro.multilog.proof import atomize_body

from repro.analysis.diagnostics import AnalysisReport


def violation_code(violation: SafetyViolation) -> str:
    return "ML002" if violation.kind == "head" else "ML003"


def lint_program_safety(program: Program, report: AnalysisReport) -> None:
    """Append one diagnostic per range-restriction defect of ``program``."""
    for violation in program.safety_violations():
        report.add(
            violation_code(violation),
            violation.message(),
            location=f"rule {violation.rule!r}",
            hint="bind the variable(s) in a positive, non-built-in body literal",
        )
    for fact in program.facts:
        if fact.is_builtin:
            report.add(
                "ML003",
                f"built-in predicate {fact.predicate!r} cannot be asserted as a fact",
                location=f"fact {fact!r}.",
                hint="built-in comparisons are evaluated, not stored",
            )


def _clause_head_violations(clause: Clause) -> list[str]:
    """Head variables of ``clause`` that no body atom binds."""
    body_vars = set()
    for atom in atomize_body(clause.body):
        body_vars |= atom.variables()
    unbound = clause.head.variables() - body_vars
    return sorted(v.name for v in unbound)


def lint_database_safety(db: MultiLogDatabase, report: AnalysisReport) -> None:
    """Source-level range restriction for every Sigma/Pi rule."""
    for clause in db.atomized_secured_clauses() + db.atomized_plain_clauses():
        if clause.is_fact:
            continue
        unbound = _clause_head_violations(clause)
        if unbound:
            report.add(
                "ML002",
                f"head variable(s) {unbound} of clause {clause} do not occur in the body",
                location=f"clause {clause}",
                hint="bind the variable(s) in a body atom, or make them constants",
            )
