"""Database D1 (Figure 10) and the MultiLog encoding of Mission (Example 5.1).

D1 source (verbatim modulo ASCII arrows)::

    r1-r5:  level(u). level(c). level(s). order(u,c). order(c,s).
    r6:     u[p(k : a -u-> v)].
    r7:     c[p(k : a -c-> t)] :- q(j).
    r8:     s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau.
    r9:     q(j).
    r10:    ?- c[p(k : a -u-> v)] << opt.

Example 5.2 proves r10 at database level c; the proof tree is Figure 11.
"""

from __future__ import annotations

from repro.multilog.ast import MultiLogDatabase, Query
from repro.multilog.parser import parse_database, parse_query

D1_SOURCE = """
% Lambda
level(u).
level(c).
level(s).
order(u, c).
order(c, s).

% Sigma
u[p(k : a -u-> v)].
c[p(k : a -c-> t)] :- q(j).
s[p(k : a -u-> v)] :- c[p(k : a -c-> t)] << cau.

% Pi
q(j).

% Query r10
?- c[p(k : a -u-> v)] << opt.
"""


def d1_database() -> MultiLogDatabase:
    """Figure 10's D1, parsed from its source text."""
    return parse_database(D1_SOURCE)


def d1_query() -> Query:
    """The r10 query of Example 5.2."""
    return parse_query("c[p(k : a -u-> v)] << opt")


def mission_multilog_source() -> str:
    """The Mission relation of Figure 1 encoded in MultiLog molecules.

    Example 5.1 shows t1's encoding; this extends it to the whole
    relation.  Tuple-class polyinstantiation (t2/t6/t7) becomes three
    molecules differing only in the head level.
    """
    rows = [
        ("s", "avenger", [("starship", "s", "avenger"), ("objective", "s", "shipping"),
                          ("destination", "s", "pluto")]),
        ("s", "atlantis", [("starship", "u", "atlantis"), ("objective", "u", "diplomacy"),
                           ("destination", "u", "vulcan")]),
        ("s", "voyager", [("starship", "u", "voyager"), ("objective", "s", "spying"),
                          ("destination", "u", "mars")]),
        ("s", "phantom", [("starship", "u", "phantom"), ("objective", "s", "spying"),
                          ("destination", "u", "omega")]),
        ("s", "phantom", [("starship", "c", "phantom"), ("objective", "s", "supply"),
                          ("destination", "s", "venus")]),
        ("c", "atlantis", [("starship", "u", "atlantis"), ("objective", "u", "diplomacy"),
                           ("destination", "u", "vulcan")]),
        ("u", "atlantis", [("starship", "u", "atlantis"), ("objective", "u", "diplomacy"),
                           ("destination", "u", "vulcan")]),
        ("u", "voyager", [("starship", "u", "voyager"), ("objective", "u", "training"),
                          ("destination", "u", "mars")]),
        ("u", "falcon", [("starship", "u", "falcon"), ("objective", "u", "piracy"),
                         ("destination", "u", "venus")]),
        ("u", "eagle", [("starship", "u", "eagle"), ("objective", "u", "patrolling"),
                        ("destination", "u", "degoba")]),
    ]
    lines = ["level(u).", "level(c).", "level(s).", "level(t).",
             "order(u, c).", "order(c, s).", "order(s, t)."]
    for level, key, cells in rows:
        inner = "; ".join(f"{attr} -{cls}-> {value}" for attr, cls, value in cells)
        lines.append(f"{level}[mission({key} : {inner})].")
    return "\n".join(lines)


def mission_multilog() -> MultiLogDatabase:
    """The Mission relation as a MultiLog database."""
    return parse_database(mission_multilog_source())
