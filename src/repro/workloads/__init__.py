"""Canonical and synthetic workloads.

* :mod:`~repro.workloads.mission` -- the paper's Mission relation
  (Figure 1), its update history, and the Jukic-Vrbsky annotation.
* :mod:`~repro.workloads.d1` -- database D1 (Figure 10) and the MultiLog
  encoding of Mission (Example 5.1).
* :mod:`~repro.workloads.generator` -- seeded random relations, lattices,
  MultiLog databases and Datalog programs for scaling benches.
"""

from repro.workloads.d1 import (
    D1_SOURCE,
    d1_database,
    d1_query,
    mission_multilog,
    mission_multilog_source,
)
from repro.workloads.generator import (
    make_lattice,
    random_datalog_program,
    random_mls_relation,
    random_multilog_database,
)
from repro.workloads.mission import (
    FIGURE5_EXPECTED,
    MISSION_ATTRIBUTES,
    MISSION_ROWS,
    jv_mission,
    mission_lattice,
    mission_relation,
    mission_schema,
    mission_via_updates,
)

__all__ = [
    "D1_SOURCE",
    "FIGURE5_EXPECTED",
    "MISSION_ATTRIBUTES",
    "MISSION_ROWS",
    "d1_database",
    "d1_query",
    "jv_mission",
    "make_lattice",
    "mission_lattice",
    "mission_multilog",
    "mission_multilog_source",
    "mission_relation",
    "mission_schema",
    "mission_via_updates",
    "random_datalog_program",
    "random_mls_relation",
    "random_multilog_database",
]
