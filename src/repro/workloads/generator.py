"""Seeded synthetic workload generators for tests and benchmarks.

The paper evaluates by worked example only; the scaling benches (the
comparison the paper defers to future work) need larger inputs.  All
generators take a ``seed`` and are deterministic given it.

* :func:`random_mls_relation` -- integrity-respecting multilevel
  relations with controllable polyinstantiation and classification skew;
* :func:`random_multilog_database` -- MultiLog databases: lattice +
  molecule facts + optional level-acyclic belief rules (kept acyclic so
  both semantics are defined -- see DESIGN.md);
* :func:`random_datalog_program` -- classical graph/ancestor programs for
  the engine ablation benches.
"""

from __future__ import annotations

import random

from repro.lattice import SecurityLattice, chain, diamond, random_lattice
from repro.mls.relation import MLSRelation
from repro.mls.schema import MLSchema
from repro.mls.tuples import Cell, MLSTuple
from repro.multilog.ast import MultiLogDatabase
from repro.multilog.bridge import relation_to_multilog
from repro.multilog.parser import parse_clause


def make_lattice(shape: str, n_levels: int = 4, seed: int | None = None) -> SecurityLattice:
    """A lattice of the requested shape: ``chain``, ``diamond`` or ``random``."""
    if shape == "chain":
        return chain([f"l{i}" for i in range(n_levels)])
    if shape == "diamond":
        return diamond()
    if shape == "random":
        return random_lattice(n_levels, seed=seed)
    raise ValueError(f"unknown lattice shape {shape!r}")


def random_mls_relation(
    n_tuples: int,
    lattice: SecurityLattice | None = None,
    n_attributes: int = 3,
    n_keys: int | None = None,
    polyinstantiation_rate: float = 0.3,
    seed: int = 0,
    name: str = "r",
) -> MLSRelation:
    """A random multilevel relation satisfying the core integrity properties.

    ``polyinstantiation_rate`` controls how often a new tuple reuses an
    existing apparent key at a different (key classification, tuple class)
    -- the ingredient that makes belief modes disagree.  The FD
    ``AK, C_AK, Ci -> Ai`` is enforced by witness reuse.
    """
    rng = random.Random(seed)
    resolved = lattice if lattice is not None else chain(["u", "c", "s", "t"])
    attributes = ["k"] + [f"a{i}" for i in range(1, n_attributes)]
    schema = MLSchema(name, attributes, key="k", lattice=resolved)
    levels = sorted(resolved.levels)
    key_budget = n_keys if n_keys is not None else max(1, n_tuples // 2)
    keys = [f"key{i}" for i in range(key_budget)]
    relation = MLSRelation(schema)
    fd_witness: dict[tuple, object] = {}
    used_keys: list[str] = []

    for index in range(n_tuples):
        if used_keys and rng.random() < polyinstantiation_rate:
            key = rng.choice(used_keys)
        else:
            key = keys[index % len(keys)]
        if key not in used_keys:
            used_keys.append(key)
        key_cls = rng.choice(levels)
        # Picking TC first keeps every choice valid on arbitrary partial
        # orders: cell classes come from the interval [key_cls, tc].
        tc = rng.choice(sorted(resolved.up_set(key_cls)))
        interval = sorted(resolved.up_set(key_cls) & resolved.down_set(tc))
        cells: dict[str, Cell] = {"k": Cell(key, key_cls)}
        for attr in attributes[1:]:
            cls = rng.choice(interval)
            fd_lhs = (key, key_cls, attr, cls)
            if fd_lhs in fd_witness:
                value = fd_witness[fd_lhs]
            else:
                value = f"v{rng.randrange(10 * max(1, n_tuples))}"
                fd_witness[fd_lhs] = value
            cells[attr] = Cell(value, cls)
        relation.add(MLSTuple(schema, cells, tc=tc))
    return relation


def random_multilog_database(
    n_tuples: int,
    lattice: SecurityLattice | None = None,
    n_attributes: int = 3,
    polyinstantiation_rate: float = 0.3,
    belief_rules: int = 0,
    plain_facts: int = 0,
    seed: int = 0,
) -> MultiLogDatabase:
    """A random MultiLog database: molecule facts + optional belief rules.

    Belief rules have the shape
    ``h[p(K : a -C-> V)] :- l[p(K : a -C-> V)] << mode`` with the head
    level ``h`` strictly dominating the believed level ``l``, which keeps
    the belief recursion level-acyclic (both semantics are total).
    """
    rng = random.Random(seed)
    resolved = lattice if lattice is not None else chain(["u", "c", "s", "t"])
    relation = random_mls_relation(
        n_tuples, resolved, n_attributes,
        polyinstantiation_rate=polyinstantiation_rate, seed=seed, name="p",
    )
    db = relation_to_multilog(relation)
    attributes = relation.schema.attributes
    ordered_pairs = [
        (low, high)
        for low in sorted(resolved.levels)
        for high in sorted(resolved.levels)
        if resolved.lt(low, high)
    ]
    generated = []
    for index in range(belief_rules):
        if not ordered_pairs:
            break
        low, high = rng.choice(ordered_pairs)
        mode = rng.choice(["fir", "opt", "cau"])
        attr = rng.choice(attributes)
        derived = f"derived{index}"
        generated.append(parse_clause(
            f"{high}[p(K : {attr} -{high}-> {derived})] :- "
            f"{low}[p(K : {attr} -C-> V)] << {mode}."
        ))
    for index in range(plain_facts):
        generated.append(parse_clause(
            f"aux(c{index}, c{rng.randrange(max(1, plain_facts))})."))
    db.add_clauses(generated)  # one version bump for the whole workload
    return db


def random_datalog_program(
    n_nodes: int,
    shape: str = "chain",
    seed: int = 0,
) -> str:
    """Source text of a classical transitive-closure workload.

    Shapes: ``chain`` (worst case for naive evaluation), ``tree`` (fan-out
    2), ``random`` (G(n, 2/n) digraph).
    """
    rng = random.Random(seed)
    lines = []
    if shape == "chain":
        edges = [(i, i + 1) for i in range(n_nodes - 1)]
    elif shape == "tree":
        edges = [((i - 1) // 2, i) for i in range(1, n_nodes)]
    elif shape == "random":
        edges = []
        for i in range(n_nodes):
            for _ in range(2):
                j = rng.randrange(n_nodes)
                if i != j:
                    edges.append((i, j))
    else:
        raise ValueError(f"unknown shape {shape!r}")
    lines.extend(f"edge(n{a}, n{b})." for a, b in sorted(set(edges)))
    lines.append("path(X, Y) :- edge(X, Y).")
    lines.append("path(X, Y) :- path(X, Z), edge(Z, Y).")
    return "\n".join(lines)
