"""Belief modes and the mode registry.

The paper fixes three built-in modes ``mu = {fir, opt, cau}`` (Section 3.2)
and promises user-defined modes as a Section 7 extension.  The registry
below carries both: built-ins are pre-registered, and any callable
``(relation, level) -> MLSRelation`` can be added as a custom mode (the
relational analogue of the USER-BELIEF proof rule).
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.errors import UnknownModeError
from repro.lattice import Level
from repro.mls.relation import MLSRelation

ModeFunction = Callable[[MLSRelation, Level], MLSRelation]


class BeliefMode(str, enum.Enum):
    """The built-in belief modes with the paper's short names."""

    FIRM = "fir"
    OPTIMISTIC = "opt"
    CAUTIOUS = "cau"

    @classmethod
    def parse(cls, name: str) -> "BeliefMode":
        """Accept both short (``cau``) and long (``cautiously``) spellings."""
        normalized = name.strip().lower()
        aliases = {
            "fir": cls.FIRM, "firm": cls.FIRM, "firmly": cls.FIRM,
            "strict": cls.FIRM,
            "opt": cls.OPTIMISTIC, "optimistic": cls.OPTIMISTIC,
            "optimistically": cls.OPTIMISTIC, "greedy": cls.OPTIMISTIC,
            "cau": cls.CAUTIOUS, "cautious": cls.CAUTIOUS,
            "cautiously": cls.CAUTIOUS, "conservative": cls.CAUTIOUS,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise UnknownModeError(f"unknown belief mode {name!r}") from None


class ModeRegistry:
    """Named belief modes available to a session / query front-end."""

    def __init__(self) -> None:
        self._modes: dict[str, ModeFunction] = {}

    def register(self, name: str, fn: ModeFunction) -> None:
        """Register (or replace) a mode under ``name`` (lower-cased)."""
        self._modes[name.strip().lower()] = fn

    def resolve(self, name: str) -> ModeFunction:
        """Look a mode up; built-in aliases are honoured before customs."""
        normalized = name.strip().lower()
        if normalized in self._modes:
            return self._modes[normalized]
        raise UnknownModeError(
            f"unknown belief mode {name!r}; registered: {sorted(self._modes)}"
        )

    def names(self) -> list[str]:
        return sorted(self._modes)

    def __contains__(self, name: str) -> bool:
        return name.strip().lower() in self._modes


def default_registry() -> ModeRegistry:
    """A registry pre-loaded with fir/opt/cau under every alias, plus the
    three Cuppens views (additive / suspicious / trusted) the paper claims
    its modes subsume (Section 3.1)."""
    from repro.belief.beta import belief  # local import to avoid a cycle
    from repro.belief.cuppens import additive, suspicious, trusted

    registry = ModeRegistry()
    for mode in BeliefMode:
        def fn(relation: MLSRelation, level: Level, _mode: BeliefMode = mode) -> MLSRelation:
            return belief(relation, level, _mode)
        registry.register(mode.value, fn)
    for alias in ("firm", "firmly", "strict"):
        registry.register(alias, registry.resolve("fir"))
    for alias in ("optimistic", "optimistically", "greedy"):
        registry.register(alias, registry.resolve("opt"))
    for alias in ("cautious", "cautiously", "conservative"):
        registry.register(alias, registry.resolve("cau"))
    registry.register("additive", additive)
    registry.register("additively", additive)
    registry.register("suspicious", suspicious)
    registry.register("suspiciously", suspicious)
    registry.register("trusted", trusted)
    return registry
