"""Cuppens' views of a multilevel database, as derived belief modes.

Cuppens [7] proposed three fixed views -- *additive*, *suspicious* and
*trusted* -- and the paper claims (Section 3.1) that its firm/optimistic/
cautious modes subsume all three.  This module implements the Cuppens
views directly so that claim is testable:

* **suspicious** -- trust only data asserted at your own level; identical
  to the firm mode.
* **additive** -- accumulate everything visible without reconciliation;
  identical to the optimistic mode up to the optimistic TC restamping
  (additive keeps the source tuple classes).
* **trusted** -- per apparent key, keep only the tuples asserted at the
  *maximal* visible tuple class (higher sources are more trustworthy);
  this is cautious overriding applied at tuple rather than attribute
  granularity, so every trusted fact is cautiously believed whenever the
  maximal source is unique.

``tests/belief/test_cuppens.py`` verifies the subsumption relationships.
"""

from __future__ import annotations

from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import MLSTuple


def suspicious(relation: MLSRelation, level: Level) -> MLSRelation:
    """Only own-level assertions (coincides with the firm mode)."""
    relation.schema.lattice.check_level(level)
    return MLSRelation(relation.schema, (t for t in relation if t.tc == level))


def additive(relation: MLSRelation, level: Level) -> MLSRelation:
    """Everything visible, source tuple classes preserved."""
    lattice = relation.schema.lattice
    lattice.check_level(level)
    return MLSRelation(
        relation.schema, (t for t in relation if lattice.leq(t.tc, level))
    )


def trusted(relation: MLSRelation, level: Level) -> MLSRelation:
    """Per key, only the tuples from the maximal visible source level(s)."""
    lattice = relation.schema.lattice
    lattice.check_level(level)
    visible = [t for t in relation if lattice.leq(t.tc, level)]
    groups: dict[tuple[object, ...], list[MLSTuple]] = {}
    for t in visible:
        groups.setdefault(t.key_values(), []).append(t)
    kept: list[MLSTuple] = []
    for group in groups.values():
        maximal_tcs = lattice.maximal({t.tc for t in group})
        kept.extend(t for t in group if t.tc in maximal_tcs)
    return MLSRelation(relation.schema, kept)
