"""Belief models over MLS relations (Section 3).

* :mod:`repro.belief.beta` -- the parametric belief function beta
  (Definition 3.1) with firm / optimistic / cautious modes.
* :mod:`repro.belief.modes` -- mode names, aliases, user-defined modes.
* :mod:`repro.belief.jukic_vrbsky` -- the fixed-interpretation model the
  paper contrasts against (Figures 4-5).
* :mod:`repro.belief.cuppens` -- Cuppens' additive / suspicious / trusted
  views, implemented to test the paper's subsumption claim.
"""

from repro.belief.beta import (
    CautiousConflict,
    belief,
    believed_without_doubt,
    cautious,
    cautious_conflicts,
    firm,
    optimistic,
)
from repro.belief.cuppens import additive, suspicious, trusted
from repro.belief.jukic_vrbsky import Interpretation, JVRelation, JVTuple
from repro.belief.modes import BeliefMode, ModeRegistry, default_registry

__all__ = [
    "BeliefMode",
    "CautiousConflict",
    "Interpretation",
    "JVRelation",
    "JVTuple",
    "ModeRegistry",
    "additive",
    "belief",
    "believed_without_doubt",
    "cautious",
    "cautious_conflicts",
    "default_registry",
    "firm",
    "optimistic",
    "suspicious",
    "trusted",
]
