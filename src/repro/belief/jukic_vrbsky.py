"""The Jukic-Vrbsky belief-assertion model (Figures 4 and 5).

Jukic and Vrbsky [16] replace single classifications with richer *belief
labels*: every tuple records the set of levels that assert it as true, the
levels that explicitly disbelieve it, and (implicitly, through the update
history) which tuple superseded it.  The interpretation of a tuple at a
level is then *fixed* by the model -- one of::

    true | cover story | mirage | irrelevant | invisible

The paper reproduces their encoding of the Mission relation (Figure 4) and
the induced interpretation table (Figure 5), and criticizes the model as
"too restrictive ... the interpretations are already given".

Reconstruction note (documented deviation): the 1999 text reproduces
Figure 4 with OCR-damaged labels, so this module rebuilds the model from
its definitional ingredients restated in the paper:

* ``believed_at`` -- the levels asserting the tuple (rendered as the
  familiar range strings ``U-S`` / ``UCS`` on chains);
* ``successor`` -- the tuple that superseded this one in the update
  lineage (set by the polyinstantiating update that created the newer
  version);
* ``disbelieved_at`` -- levels that explicitly marked the tuple false.

Interpretation of tuple ``t`` at level ``l``:

1. ``INVISIBLE`` when ``l`` dominates no asserting level (it cannot even
   see the data).
2. ``TRUE`` when ``l`` asserts ``t``.
3. ``COVER_STORY`` when a lineage successor of ``t`` is true at ``l``
   (``l`` holds the real story, so ``t`` is a deliberate fabrication).
4. ``MIRAGE`` when ``l`` (or a level it dominates) explicitly disbelieves
   ``t`` with no replacement.
5. ``IRRELEVANT`` otherwise -- visible, not believed, not contradicted.

This reproduces every entry of Figure 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lattice import Level, SecurityLattice
from repro.mls.tuples import MLSTuple


class Interpretation(str, enum.Enum):
    """The five fixed tuple interpretations of the Jukic-Vrbsky model."""

    TRUE = "true"
    COVER_STORY = "cover story"
    MIRAGE = "mirage"
    IRRELEVANT = "irrelevant"
    INVISIBLE = "invisible"


@dataclass
class JVTuple:
    """A tuple annotated with Jukic-Vrbsky belief assertions."""

    tid: str
    data: MLSTuple
    believed_at: frozenset[Level]
    disbelieved_at: frozenset[Level] = frozenset()
    successor: "JVTuple | None" = field(default=None, repr=False)

    def label(self, lattice: SecurityLattice) -> str:
        """Render ``believed_at`` in the figure's compact chain notation.

        Contiguous runs on a chain print as ``U-S``; full enumerations as
        concatenated level initials (``UCS``); singletons as the level.
        """
        ordered = [lvl for lvl in lattice.topological() if lvl in self.believed_at]
        if not ordered:
            return "-"
        if len(ordered) == 1:
            return ordered[0].upper()
        chain_positions = lattice.topological()
        indices = [chain_positions.index(lvl) for lvl in ordered]
        contiguous = indices == list(range(indices[0], indices[-1] + 1))
        if contiguous and len(ordered) > 2:
            return "".join(lvl.upper() for lvl in ordered)
        if contiguous or len(ordered) == 2:
            return f"{ordered[0].upper()}-{ordered[-1].upper()}"
        return "".join(lvl.upper() for lvl in ordered)


@dataclass
class JVRelation:
    """A Jukic-Vrbsky annotated relation: tuples plus the lattice."""

    lattice: SecurityLattice
    tuples: list[JVTuple] = field(default_factory=list)

    def add(self, jv: JVTuple) -> JVTuple:
        self.tuples.append(jv)
        return jv

    def by_tid(self, tid: str) -> JVTuple:
        for jv in self.tuples:
            if jv.tid == tid:
                return jv
        raise KeyError(tid)

    # ------------------------------------------------------------------
    def interpret(self, jv: JVTuple, level: Level) -> Interpretation:
        """The model's fixed interpretation of ``jv`` at ``level``."""
        self.lattice.check_level(level)
        if not any(self.lattice.leq(src, level) for src in jv.believed_at):
            return Interpretation.INVISIBLE
        if level in jv.believed_at:
            return Interpretation.TRUE
        successor = jv.successor
        while successor is not None:
            if level in successor.believed_at:
                return Interpretation.COVER_STORY
            successor = successor.successor
        if any(self.lattice.leq(src, level) for src in jv.disbelieved_at):
            return Interpretation.MIRAGE
        return Interpretation.IRRELEVANT

    def interpretation_table(self, levels: list[Level] | None = None) -> dict[str, dict[Level, Interpretation]]:
        """The Figure 5 table: tid -> level -> interpretation."""
        columns = levels if levels is not None else self.lattice.topological()
        return {
            jv.tid: {level: self.interpret(jv, level) for level in columns}
            for jv in self.tuples
        }

    def believed_view(self, level: Level) -> list[JVTuple]:
        """Tuples interpreted as true at ``level`` (the J-V user view)."""
        return [jv for jv in self.tuples if self.interpret(jv, level) is Interpretation.TRUE]
