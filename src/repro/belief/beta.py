"""The parametric belief function beta (Definition 3.1).

``beta(r, s, m)`` computes the relation a subject cleared at ``s`` believes
in mode ``m``:

* **firm** -- exactly the tuples created at ``s`` (``t[TC] = s``); the
  conservative "only my level speaks truth" stance (Figure 6).
* **optimistic** -- every tuple whose tuple class is dominated by ``s``,
  restamped ``TC = s`` (the paper contrasts this restamping with the
  Jajodia-Sandhu view of Figure 3); monotonic accumulation (Figure 7).
* **cautious** -- non-monotonic inheritance with overriding: per apparent
  key, each attribute takes the value whose classification is *maximal*
  among the tuples visible at ``s`` (Figure 8).  Dominating levels
  override lower ones exactly like subclasses override superclasses.

beta deliberately does **not** apply the Jajodia-Sandhu filter sigma, so
it never manufactures null-bearing migrated tuples: Figure 7's t4/t5 and
Figure 8's t5 are *absent* from beta's output (Section 3.2 calls this out
explicitly -- it is how beta avoids generating surprise stories).

On partial orders the cautious maximum need not be unique; beta then
returns every combination of maximal choices (the paper's "multiple
models").  :func:`cautious_conflicts` reports where that happened.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import Cell, MLSTuple
from repro.belief.modes import BeliefMode


def firm(relation: MLSRelation, level: Level) -> MLSRelation:
    """Tuples stored at exactly ``level`` (Definition 3.1, m = firm)."""
    relation.schema.lattice.check_level(level)
    return MLSRelation(
        relation.schema, (t for t in relation if t.tc == level)
    )


def optimistic(relation: MLSRelation, level: Level) -> MLSRelation:
    """All tuples visible at ``level``, restamped ``TC = level``."""
    lattice = relation.schema.lattice
    lattice.check_level(level)
    believed = (
        t.replace(tc=level) for t in relation if lattice.leq(t.tc, level)
    )
    return MLSRelation(relation.schema, believed)


@dataclass(frozen=True)
class CautiousConflict:
    """A key/attribute pair whose maximal believed cells are not unique."""

    key: tuple[object, ...]
    attribute: str
    candidates: tuple[Cell, ...]


def _visible(relation: MLSRelation, level: Level) -> list[MLSTuple]:
    lattice = relation.schema.lattice
    return [t for t in relation if lattice.leq(t.tc, level)]


def _maximal_cells(relation: MLSRelation, group: list[MLSTuple], attribute: str) -> list[Cell]:
    """Distinct cells for ``attribute`` whose classification nothing outranks."""
    lattice = relation.schema.lattice
    cells: list[Cell] = []
    for t in group:
        cell = t.cell(attribute)
        if cell not in cells:
            cells.append(cell)
    return [
        cell for cell in cells
        if not any(lattice.lt(cell.cls, other.cls) for other in cells)
    ]


def cautious(relation: MLSRelation, level: Level) -> MLSRelation:
    """Inheritance-with-overriding belief (Definition 3.1, m = cautious)."""
    lattice = relation.schema.lattice
    lattice.check_level(level)
    visible = _visible(relation, level)
    groups: dict[tuple[object, ...], list[MLSTuple]] = {}
    for t in visible:
        groups.setdefault(t.key_values(), []).append(t)
    believed: list[MLSTuple] = []
    for group in groups.values():
        per_attribute = [
            _maximal_cells(relation, group, attr)
            for attr in relation.schema.attributes
        ]
        for combo in itertools.product(*per_attribute):
            cells = dict(zip(relation.schema.attributes, combo))
            believed.append(MLSTuple(relation.schema, cells, tc=level))
    return MLSRelation(relation.schema, believed)


def cautious_conflicts(relation: MLSRelation, level: Level) -> list[CautiousConflict]:
    """Key/attribute pairs where cautious belief is ambiguous at ``level``.

    Ambiguity arises from incomparable classifications (partial orders) or
    from distinct values at the same maximal classification (possible when
    key classifications differ, e.g. the two Phantom lineages at level S).
    """
    visible = _visible(relation, level)
    groups: dict[tuple[object, ...], list[MLSTuple]] = {}
    for t in visible:
        groups.setdefault(t.key_values(), []).append(t)
    conflicts: list[CautiousConflict] = []
    for key, group in groups.items():
        for attr in relation.schema.attributes:
            maximal = _maximal_cells(relation, group, attr)
            if len(maximal) > 1:
                conflicts.append(CautiousConflict(key, attr, tuple(maximal)))
    return conflicts


def belief(relation: MLSRelation, level: Level, mode: BeliefMode | str) -> MLSRelation:
    """The parametric belief function ``beta : R x S x mu -> R``."""
    resolved = mode if isinstance(mode, BeliefMode) else BeliefMode.parse(mode)
    if resolved is BeliefMode.FIRM:
        return firm(relation, level)
    if resolved is BeliefMode.OPTIMISTIC:
        return optimistic(relation, level)
    return cautious(relation, level)


def believed_without_doubt(relation: MLSRelation, level: Level,
                           attributes: tuple[str, ...] | None = None) -> MLSRelation:
    """Tuples believed in *every* mode at ``level`` -- "without any doubt".

    This is the Section 3.2 query pattern: the intersection of the firm,
    optimistic and cautious beliefs.  Comparison is on data values over
    ``attributes`` (default: the apparent key), since the three modes stamp
    different tuple classes.
    """
    attrs = attributes if attributes is not None else relation.schema.key
    views = [belief(relation, level, mode) for mode in BeliefMode]
    rows = [set(view.project_values(attrs)) for view in views]
    agreed = set.intersection(*rows)
    return views[0].select(lambda t: tuple(t.value(a) for a in attrs) in agreed)
