"""The parametric belief function beta (Definition 3.1).

``beta(r, s, m)`` computes the relation a subject cleared at ``s`` believes
in mode ``m``:

* **firm** -- exactly the tuples created at ``s`` (``t[TC] = s``); the
  conservative "only my level speaks truth" stance (Figure 6).
* **optimistic** -- every tuple whose tuple class is dominated by ``s``,
  restamped ``TC = s`` (the paper contrasts this restamping with the
  Jajodia-Sandhu view of Figure 3); monotonic accumulation (Figure 7).
* **cautious** -- non-monotonic inheritance with overriding: per apparent
  key, each attribute takes the value whose classification is *maximal*
  among the tuples visible at ``s`` (Figure 8).  Dominating levels
  override lower ones exactly like subclasses override superclasses.

beta deliberately does **not** apply the Jajodia-Sandhu filter sigma, so
it never manufactures null-bearing migrated tuples: Figure 7's t4/t5 and
Figure 8's t5 are *absent* from beta's output (Section 3.2 calls this out
explicitly -- it is how beta avoids generating surprise stories).

On partial orders the cautious maximum need not be unique; beta then
returns every combination of maximal choices (the paper's "multiple
models").  :func:`cautious_conflicts` reports where that happened.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.cache import VersionedMemo
from repro.errors import BeliefError
from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import Cell, MLSTuple
from repro.belief.modes import BeliefMode
from repro.obs.context import current as _current_obs

#: Default guard on the ``itertools.product`` over per-attribute maximal
#: cells in :func:`cautious`.  On partial orders every attribute can have
#: several incomparable maximal cells, and the product over them is
#: exponential in the number of attributes -- adversarial inputs could
#: otherwise exhaust memory building the "multiple models".
MAX_CAUTIOUS_COMBINATIONS = 10_000

#: beta views memoized per ``(relation-version, level, mode)``; any
#: relation mutation bumps the version and invalidates (see repro.cache).
_BETA_MEMO = VersionedMemo("beta-views")


def firm(relation: MLSRelation, level: Level) -> MLSRelation:
    """Tuples stored at exactly ``level`` (Definition 3.1, m = firm)."""
    relation.schema.lattice.check_level(level)
    return MLSRelation(
        relation.schema, (t for t in relation if t.tc == level)
    )


def optimistic(relation: MLSRelation, level: Level) -> MLSRelation:
    """All tuples visible at ``level``, restamped ``TC = level``."""
    lattice = relation.schema.lattice
    lattice.check_level(level)
    believed = (
        t.replace(tc=level) for t in relation if lattice.leq(t.tc, level)
    )
    return MLSRelation(relation.schema, believed)


@dataclass(frozen=True)
class CautiousConflict:
    """A key/attribute pair whose maximal believed cells are not unique."""

    key: tuple[object, ...]
    attribute: str
    candidates: tuple[Cell, ...]


def _visible(relation: MLSRelation, level: Level) -> list[MLSTuple]:
    lattice = relation.schema.lattice
    return [t for t in relation if lattice.leq(t.tc, level)]


def _visible_groups(relation: MLSRelation, level: Level) -> dict[tuple[object, ...], list[MLSTuple]]:
    """Tuples visible at ``level``, grouped by apparent-key values."""
    groups: dict[tuple[object, ...], list[MLSTuple]] = {}
    for t in _visible(relation, level):
        groups.setdefault(t.key_values(), []).append(t)
    return groups


def _maximal_cells(group: list[MLSTuple], attribute: str) -> list[Cell]:
    """Distinct cells for ``attribute`` whose classification nothing outranks."""
    lattice = group[0].schema.lattice
    cells: list[Cell] = []
    for t in group:
        cell = t.cell(attribute)
        if cell not in cells:
            cells.append(cell)
    return [
        cell for cell in cells
        if not any(lattice.lt(cell.cls, other.cls) for other in cells)
    ]


def cautious(relation: MLSRelation, level: Level,
             max_combinations: int | None = None) -> MLSRelation:
    """Inheritance-with-overriding belief (Definition 3.1, m = cautious).

    ``max_combinations`` caps the per-key product of incomparable maximal
    cells (default :data:`MAX_CAUTIOUS_COMBINATIONS`); exceeding it raises
    :class:`~repro.errors.BeliefError` instead of materializing an
    exponential set of "multiple models".
    """
    cap = MAX_CAUTIOUS_COMBINATIONS if max_combinations is None else max_combinations
    lattice = relation.schema.lattice
    lattice.check_level(level)
    meter = _current_obs().meter
    believed: list[MLSTuple] = []
    for key, group in _visible_groups(relation, level).items():
        if meter is not None:
            meter.check_time("cautious")
        per_attribute = [
            _maximal_cells(group, attr)
            for attr in relation.schema.attributes
        ]
        combinations = math.prod(len(cells) for cells in per_attribute)
        if combinations > cap:
            raise BeliefError(
                f"cautious belief at {level!r} for key {key!r} has "
                f"{combinations} maximal-cell combinations (cap {cap}); "
                "the partial order leaves too many incomparable choices -- "
                "raise max_combinations only if you really want them all"
            )
        for combo in itertools.product(*per_attribute):
            cells = dict(zip(relation.schema.attributes, combo))
            believed.append(MLSTuple(relation.schema, cells, tc=level))
        if meter is not None:
            meter.charge_rows(combinations, "cautious")
    return MLSRelation(relation.schema, believed)


def cautious_conflicts(relation: MLSRelation, level: Level) -> list[CautiousConflict]:
    """Key/attribute pairs where cautious belief is ambiguous at ``level``.

    Ambiguity arises from incomparable classifications (partial orders) or
    from distinct values at the same maximal classification (possible when
    key classifications differ, e.g. the two Phantom lineages at level S).
    """
    conflicts: list[CautiousConflict] = []
    for key, group in _visible_groups(relation, level).items():
        for attr in relation.schema.attributes:
            maximal = _maximal_cells(group, attr)
            if len(maximal) > 1:
                conflicts.append(CautiousConflict(key, attr, tuple(maximal)))
    return conflicts


def _audit_belief(relation: MLSRelation, level: Level, mode: str, audit) -> None:
    """Emit the MLS audit events one beta computation implies.

    Runs on cache hits too -- the *access* happened either way, and the
    :class:`~repro.obs.audit.AuditLog` dedups repeats -- so the trail
    does not depend on memo state.  Firm belief reads only its own level
    and emits nothing.
    """
    lattice = relation.schema.lattice
    predicate = relation.schema.name
    subject = str(level)
    for t in relation:
        if t.tc != level and lattice.leq(t.tc, level):
            audit.emit("cross_level_read", subject=subject, object=str(t.tc),
                       mode=mode, predicate=predicate)
    if mode != "cau":
        return
    for group in _visible_groups(relation, level).values():
        for attr in relation.schema.attributes:
            maximal = _maximal_cells(group, attr)
            seen: list[Cell] = []
            for t in group:
                cell = t.cell(attr)
                if cell in seen or cell in maximal:
                    continue
                seen.append(cell)
                winner = next(
                    (c for c in maximal if lattice.lt(cell.cls, c.cls)), None)
                if winner is not None:
                    audit.emit("override", subject=subject,
                               object=str(cell.cls), mode="cau",
                               predicate=predicate, attribute=attr,
                               overriding_cls=str(winner.cls))


def belief(relation: MLSRelation, level: Level, mode: BeliefMode | str) -> MLSRelation:
    """The parametric belief function ``beta : R x S x mu -> R``.

    Views are memoized per ``(relation-version, level, mode)``; a repeated
    ask returns the cached relation (treat it as read-only), and any
    mutation of ``relation`` invalidates every cached view.
    """
    resolved = mode if isinstance(mode, BeliefMode) else BeliefMode.parse(mode)
    if resolved is BeliefMode.FIRM:
        compute = lambda: firm(relation, level)  # noqa: E731
    elif resolved is BeliefMode.OPTIMISTIC:
        compute = lambda: optimistic(relation, level)  # noqa: E731
    else:
        compute = lambda: cautious(relation, level)  # noqa: E731
    obs = _current_obs()
    with obs.recorder.span("beta", level=str(level), mode=resolved.value) as span:
        view = _BETA_MEMO.get_or_compute(
            relation, relation.version, (level, resolved.value), compute
        )
        span.set(tuples=len(view))
    if obs.audit.enabled and resolved is not BeliefMode.FIRM:
        _audit_belief(relation, level, resolved.value, obs.audit)
    return view


def believed_without_doubt(relation: MLSRelation, level: Level,
                           attributes: tuple[str, ...] | None = None) -> MLSRelation:
    """Tuples believed in *every* mode at ``level`` -- "without any doubt".

    This is the Section 3.2 query pattern: the intersection of the firm,
    optimistic and cautious beliefs.  Comparison is on data values over
    ``attributes`` (default: the apparent key), since the three modes stamp
    different tuple classes.
    """
    attrs = attributes if attributes is not None else relation.schema.key
    views = [belief(relation, level, mode) for mode in BeliefMode]
    rows = [set(view.project_values(attrs)) for view in views]
    agreed = set.intersection(*rows)
    return views[0].select(lambda t: tuple(t.value(a) for a in attrs) in agreed)
