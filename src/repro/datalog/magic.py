"""Magic-sets rewriting: tuple-level demand for bottom-up evaluation.

Given a query with some bound arguments, the transformation specializes
the program so the bottom-up engine only derives facts *relevant* to the
query -- CORAL performed this rewriting automatically, so the ablation
bench (full bottom-up vs demand-driven vs magic) reconstructs the design
space the paper's implementation section gestures at.

Scope: the classical transformation for positive Datalog with
left-to-right sideways information passing.  Negated and built-in
literals are carried along unadorned: their predicates are evaluated in
full (sound; just less demand pruning).  Rules defining predicates that
appear negated are kept untransformed for the same reason.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.atoms import Atom, Literal
from repro.datalog.database import Row
from repro.datalog.engine import evaluate
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import Substitution, apply_to_atom, match_atom

Adornment = str  # e.g. "bf" -- one char per argument, b(ound) or f(ree)


def adornment_of(atom: Atom, bound_vars: set[Variable]) -> Adornment:
    """The b/f pattern of ``atom`` given the currently bound variables."""
    letters = []
    for arg in atom.args:
        if isinstance(arg, Constant) or arg in bound_vars:
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


def magic_name(predicate: str, adornment: Adornment) -> str:
    return f"magic_{predicate}__{adornment}"


def adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}__{adornment}"


def _bound_args(atom: Atom, adornment: Adornment) -> tuple:
    return tuple(arg for arg, letter in zip(atom.args, adornment) if letter == "b")


@dataclass
class MagicProgram:
    """The rewritten program plus the query goal over the adorned predicate."""

    program: Program
    goal: Atom
    original_goal: Atom

    def answer_rows(self) -> set[Row]:
        """Evaluate bottom-up and project answers onto the original goal."""
        db = evaluate(self.program)
        rows: set[Row] = set()
        for row in db.rows(self.goal.predicate):
            subst: Substitution | None = match_atom(self.goal, row, {})
            if subst is not None:
                rows.add(apply_to_atom(self.original_goal, subst).ground_tuple())
        return rows


def magic_transform(program: Program, goal: Atom) -> MagicProgram:
    """Rewrite ``program`` for ``goal`` with the magic-sets transformation."""
    program.check_safety()
    idb = program.idb_predicates()
    negated_predicates = {
        literal.predicate
        for rule in program.rules
        for literal in rule.body
        if not literal.positive
    }
    transformable = {p for p in idb if p not in negated_predicates}

    out = Program()
    for fact in program.facts:
        out.add_fact(fact)
    # Rules for non-transformable predicates are kept verbatim.
    for rule in program.rules:
        if rule.head.predicate not in transformable:
            out.add_rule(rule)

    goal_adornment = adornment_of(goal, set())
    if goal.predicate not in transformable:
        # Nothing to specialize; evaluate as-is against the original goal.
        for rule in program.rules:
            if rule.head.predicate in transformable:
                out.add_rule(rule)
        return MagicProgram(out, goal, goal)

    seen: set[tuple[str, Adornment]] = set()
    queue: list[tuple[str, Adornment]] = [(goal.predicate, goal_adornment)]
    while queue:
        predicate, adornment = queue.pop()
        if (predicate, adornment) in seen:
            continue
        seen.add((predicate, adornment))
        for rule in program.rules_for(predicate):
            head = rule.head
            bound_vars = {
                arg for arg, letter in zip(head.args, adornment)
                if letter == "b" and isinstance(arg, Variable)
            }
            magic_head_args = _bound_args(head, adornment)
            new_body: list[Literal] = [
                Literal(Atom(magic_name(predicate, adornment), magic_head_args))
            ]
            for literal in rule.body:
                atom = literal.atom
                if atom.is_builtin or not literal.positive or atom.predicate not in transformable:
                    new_body.append(literal)
                    if literal.positive and not atom.is_builtin:
                        bound_vars |= atom.variables()
                    continue
                sub_adornment = adornment_of(atom, bound_vars)
                # Demand rule: the magic set of the callee grows from the
                # bindings available at this point of the body.
                magic_args = _bound_args(atom, sub_adornment)
                out.add_rule(Rule(
                    Atom(magic_name(atom.predicate, sub_adornment), magic_args),
                    tuple(new_body),
                ))
                queue.append((atom.predicate, sub_adornment))
                new_body.append(Literal(Atom(adorned_name(atom.predicate, sub_adornment), atom.args)))
                bound_vars |= atom.variables()
            out.add_rule(Rule(Atom(adorned_name(predicate, adornment), head.args), tuple(new_body)))

    # A transformed predicate may also have directly asserted facts; those
    # are stored under the original name, so bridge them into the adorned
    # predicate under magic-set demand.
    fact_predicates = {fact.predicate for fact in program.facts}
    for predicate, adornment in sorted(seen):
        if predicate not in fact_predicates:
            continue
        arity = _predicate_arity(program, predicate)
        args = tuple(Variable(f"X{i}") for i in range(arity))
        bound = tuple(a for a, letter in zip(args, adornment) if letter == "b")
        out.add_rule(Rule(
            Atom(adorned_name(predicate, adornment), args),
            (Literal(Atom(magic_name(predicate, adornment), bound)),
             Literal(Atom(predicate, args))),
        ))

    # Seed: the query's bound constants populate the initial magic set.
    seed_args = _bound_args(goal, goal_adornment)
    out.add_rule(Rule(Atom(magic_name(goal.predicate, goal_adornment), seed_args)))
    adorned_goal = Atom(adorned_name(goal.predicate, goal_adornment), goal.args)
    return MagicProgram(out, adorned_goal, goal)


def _predicate_arity(program: Program, predicate: str) -> int:
    for fact in program.facts:
        if fact.predicate == predicate:
            return fact.arity
    for rule in program.rules:
        if rule.head.predicate == predicate:
            return rule.head.arity
        for literal in rule.body:
            if literal.predicate == predicate:
                return literal.atom.arity
    return 0


def magic_query(program: Program, goal: Atom) -> set[Row]:
    """Answer ``goal`` via magic rewriting + bottom-up evaluation."""
    return magic_transform(program, goal).answer_rows()
