"""Predicate dependency analysis and stratification.

The MultiLog engine axioms (Figure 12) use negation; the paper notes "the
axioms are actually stratified".  This module builds the predicate
dependency graph, computes a stratification (least fixpoint of stratum
numbers), and rejects programs with recursion through negation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datalog.rules import Program
from repro.errors import StratificationError


@dataclass(frozen=True)
class Dependency:
    """An edge ``head depends on body_pred`` with its polarity."""

    head: str
    body: str
    negative: bool


def dependencies(program: Program) -> list[Dependency]:
    """All predicate-level dependency edges of the program."""
    edges: set[Dependency] = set()
    for rule in program.rules:
        for literal in rule.body:
            if literal.atom.is_builtin:
                continue
            edges.add(Dependency(rule.head.predicate, literal.predicate, not literal.positive))
    return sorted(edges, key=lambda e: (e.head, e.body, e.negative))


def stratify(program: Program) -> dict[str, int]:
    """Assign a stratum number to every predicate; raise when impossible.

    Strata satisfy: positive dependency -> stratum(head) >= stratum(body);
    negative dependency -> stratum(head) > stratum(body).  The algorithm
    iterates to a fixpoint; a stratum exceeding the predicate count means
    a cycle through negation exists.
    """
    predicates = program.predicates()
    stratum = {p: 0 for p in predicates}
    edges = dependencies(program)
    limit = len(predicates) + 1
    changed = True
    while changed:
        changed = False
        for edge in edges:
            required = stratum[edge.body] + (1 if edge.negative else 0)
            if stratum[edge.head] < required:
                stratum[edge.head] = required
                if stratum[edge.head] > limit:
                    cycle = _negative_cycle_hint(edges)
                    raise StratificationError(
                        "program is not stratifiable: recursion through negation"
                        + (f" involving {cycle}" if cycle else "")
                    )
                changed = True
    return stratum


def _negative_cycle_hint(edges: list[Dependency]) -> str:
    """Best-effort description of a predicate on a negative cycle."""
    adjacency: dict[str, list[Dependency]] = {}
    for edge in edges:
        adjacency.setdefault(edge.head, []).append(edge)

    def reaches(start: str, target: str, used_negative: bool, seen: frozenset[str]) -> bool:
        if start == target and used_negative:
            return True
        for edge in adjacency.get(start, ()):
            if edge.body in seen and not (edge.body == target and (used_negative or edge.negative)):
                continue
            if edge.body == target and (used_negative or edge.negative):
                return True
            if edge.body not in seen:
                if reaches(edge.body, target, used_negative or edge.negative, seen | {edge.body}):
                    return True
        return False

    for edge in edges:
        if edge.negative and reaches(edge.body, edge.head, False, frozenset({edge.body})):
            return repr(edge.head)
    return ""


def strata(program: Program) -> list[list[str]]:
    """Predicates grouped by stratum, lowest first."""
    assignment = stratify(program)
    if not assignment:
        return []
    grouped: dict[int, list[str]] = {}
    for predicate, level in assignment.items():
        grouped.setdefault(level, []).append(predicate)
    return [sorted(grouped[level]) for level in sorted(grouped)]
