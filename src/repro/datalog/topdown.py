"""Demand-driven (top-down, memoized) evaluation.

A goal-directed alternative to the bottom-up engine: only predicates
*reachable* from the query are evaluated, with per-predicate memo tables.
Recursive cliques are detected as strongly connected components of the
dependency graph and evaluated to a local fixpoint, so left recursion
terminates (plain SLD would loop).

This is predicate-granularity demand; :mod:`repro.datalog.magic` pushes
demand down to the tuple level.  The three strategies (bottom-up,
demand-driven, magic) answer identical queries -- a property test and an
ablation bench rely on that.
"""

from __future__ import annotations

from repro.datalog.atoms import Atom, Literal
from repro.datalog.builtins import evaluate_builtin
from repro.datalog.database import Database, Row
from repro.datalog.engine import reorder_body
from repro.datalog.rules import Program, Rule
from repro.datalog.stratify import stratify
from repro.datalog.unify import Substitution, apply_to_atom, match_atom
from repro.errors import DatalogError


class TopDownEngine:
    """Memoizing goal-directed evaluator over one program."""

    def __init__(self, program: Program):
        program.check_safety()
        stratify(program)  # reject unstratifiable programs up front
        self._program = program
        self._rules: dict[str, list[Rule]] = {}
        for rule in program.rules:
            reordered = Rule(rule.head, reorder_body(rule.body, rule))
            self._rules.setdefault(rule.head.predicate, []).append(reordered)
        self._facts = Database()
        for fact in program.facts:
            self._facts.add_atom(fact)
        self._memo: dict[str, set[Row]] = {}
        self._complete: set[str] = set()
        self._in_progress: list[str] = []

    # ------------------------------------------------------------------
    def extension(self, predicate: str) -> set[Row]:
        """The full extension of ``predicate``, computed on demand."""
        if predicate in self._complete:
            return self._memo[predicate]
        if predicate in self._in_progress:
            # Recursive call inside a clique: return what is known so far;
            # the clique driver iterates to a fixpoint.
            return self._memo.setdefault(predicate, set())
        clique = self._recursive_clique(predicate)
        for member in clique:
            self._memo.setdefault(member, set())
            self._memo[member] |= self._facts.rows(member)
        self._in_progress.extend(clique)
        try:
            changed = True
            while changed:
                changed = False
                for member in clique:
                    for rule in self._rules.get(member, ()):
                        for row in self._derive(rule):
                            if row not in self._memo[member]:
                                self._memo[member].add(row)
                                changed = True
        finally:
            for member in clique:
                self._in_progress.remove(member)
        self._complete.update(clique)
        return self._memo[predicate]

    def _recursive_clique(self, predicate: str) -> list[str]:
        """The SCC of ``predicate`` in the positive dependency graph."""
        edges: dict[str, set[str]] = {}
        for pred, rules in self._rules.items():
            for rule in rules:
                for literal in rule.body:
                    if literal.atom.is_builtin:
                        continue
                    edges.setdefault(pred, set()).add(literal.predicate)

        def reachable(start: str) -> set[str]:
            seen = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nxt in edges.get(node, ()):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            return seen

        forward = reachable(predicate)
        return sorted(p for p in forward if predicate in reachable(p))

    def _derive(self, rule: Rule) -> list[Row]:
        rows: list[Row] = []
        for subst in self._solve_body(rule.body, 0, {}):
            head = apply_to_atom(rule.head, subst)
            if not head.is_ground():
                raise DatalogError(f"derived non-ground head {head!r}")
            rows.append(head.ground_tuple())
        return rows

    def _solve_body(self, body: tuple[Literal, ...], index: int,
                    subst: Substitution) -> list[Substitution]:
        if index == len(body):
            return [subst]
        literal = body[index]
        atom = literal.atom
        if atom.is_builtin:
            if evaluate_builtin(atom, subst):
                return self._solve_body(body, index + 1, subst)
            return []
        if not literal.positive:
            grounded = apply_to_atom(atom, subst)
            if not grounded.is_ground():
                raise DatalogError(f"negated literal {grounded!r} not ground")
            rows = self._predicate_rows(grounded.predicate)
            if grounded.ground_tuple() in rows:
                return []
            return self._solve_body(body, index + 1, subst)
        results: list[Substitution] = []
        for row in self._predicate_rows(atom.predicate):
            extended = match_atom(atom, row, subst)
            if extended is not None:
                results.extend(self._solve_body(body, index + 1, extended))
        return results

    def _predicate_rows(self, predicate: str) -> set[Row]:
        if predicate in self._rules:
            if predicate in self._in_progress:
                base = set(self._memo.get(predicate, set()))
                base |= self._facts.rows(predicate)
                return base
            return self.extension(predicate)
        return self._facts.rows(predicate)

    # ------------------------------------------------------------------
    def query(self, goal: Atom) -> list[Substitution]:
        """Answer substitutions for a goal atom."""
        rows = self._predicate_rows(goal.predicate)
        answers = []
        for row in rows:
            subst = match_atom(goal, row, {})
            if subst is not None:
                answers.append(subst)
        return answers

    def answer_rows(self, goal: Atom) -> set[Row]:
        return {
            apply_to_atom(goal, subst).ground_tuple() for subst in self.query(goal)
        }
