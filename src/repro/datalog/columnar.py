"""The columnar storage backend: dictionary-encoded batch relations.

Facts live per ``(predicate, arity)`` table as **interned constant
codes** -- every distinct value (by Python equality, exactly the dedup
relation of the dict backend's ``set[Row]``) is assigned one small int,
so rows are tuples of ints, hash joins key on ints, and equality guards
compare ints.  Each table keeps a coded-row spine (insertion order) and
projects per-position column arrays from it lazily (``columns``); the
spine is what batch operators stream, the columns serve whole-column
scans without re-walking rows.

Two API layers:

* the row-level :class:`~repro.datalog.storage.StorageBackend` contract
  (``rows``/``bucket``/``candidates``/``contains``/``add``...), speaking
  *decoded* values so the naive, semi-naive and compiled strategies run
  unchanged against this store;
* a batch layer for the ``vectorized`` strategy
  (:mod:`repro.datalog.plan`'s :class:`~repro.datalog.plan.BatchRule`):
  ``batch_index`` builds (and incrementally extends) a hash table from
  coded key columns to projected keep-tuples, ``insert_coded``
  bulk-inserts a derived batch with one set-difference dedup and a single
  version bump, ``coded_rows``/``coded_set`` expose whole relations as
  coded batches.

Every cache (decoded rows, row-level probe indexes, batch hash tables)
is maintained **lazily by watermark**: each remembers how many rows of
its table it has absorbed and catches up on access, so inserts are O(1)
amortized regardless of how many indexes exist -- the same trick the
dict backend plays with its composite indexes, lifted to column batches.

Counters: ``batch_probe_count`` (one per batch probe operation, i.e. per
join op per firing -- not per row), ``batch_build_count`` (hash-table
builds/extensions that processed rows) and ``batch_dedup_rows`` (rows a
bulk insert dropped as duplicates) feed the observability stack next to
the row-level ``probe_count``/``candidate_calls``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.datalog.atoms import Atom
from repro.datalog.database import Row, _EMPTY
from repro.datalog.terms import Constant
from repro.datalog.unify import Substitution, walk

#: coded batch: rows of one (predicate, arity) table as tuples of codes.
CodedRow = tuple[int, ...]

_EMPTY_SET: frozenset = frozenset()


class _Table:
    """One ``(predicate, arity)`` relation: coded-row spine + projections.

    The spine is ``_coded_list`` (rows as code tuples, insertion order)
    plus ``coded`` (the same rows as a set: the dedup relation and
    anti-join target).  Column arrays, decoded rows, row-level probe
    indexes and batch hash tables are all *projections* of the spine,
    maintained lazily by watermark -- inserts append to the spine in
    O(1) per row no matter how many projections exist, and each
    projection catches up on its next access.  (Appends must stay this
    cheap: a fixpoint round inserts a whole derived batch, and eagerly
    transposing million-row batches dominated vectorized runtime.)
    """

    __slots__ = ("arity", "coded", "n", "_coded_list", "_columns",
                 "_columns_upto", "_decoded", "_decoded_upto",
                 "_row_indexes", "_batch_indexes")

    def __init__(self, arity: int):
        self.arity = arity
        #: coded-row set -- the dedup relation and anti-join target.
        self.coded: set[CodedRow] = set()
        #: row count (drives every watermark).
        self.n = 0
        #: the spine: coded rows in insertion order.
        self._coded_list: list[CodedRow] = []
        #: dictionary-encoded column arrays + watermark (lazy projection).
        self._columns: tuple[list[int], ...] = tuple([] for _ in range(arity))
        self._columns_upto = 0
        #: decoded value rows + watermark (row-level ``rows()`` view).
        self._decoded: set[Row] = set()
        self._decoded_upto = 0
        #: row-level probe indexes: positions -> [key -> decoded rows, upto].
        self._row_indexes: dict[tuple[int, ...], list] = {}
        #: batch hash tables: (key_pos, keep_pos, eq_pairs) ->
        #: [key -> list of keep-tuples, upto].
        self._batch_indexes: dict[tuple, list] = {}

    def coded_rows(self) -> list[CodedRow]:
        """All rows as coded tuples, insertion order (the spine itself)."""
        return self._coded_list

    def columns(self) -> tuple[list[int], ...]:
        """Per-position code arrays, caught up to the spine on access."""
        if self._columns_upto < self.n:
            tail = self._coded_list[self._columns_upto:]
            for position, column in enumerate(self._columns):
                column.extend([row[position] for row in tail])
            self._columns_upto = self.n
        return self._columns

    def append(self, fresh) -> None:
        """Append pre-deduplicated coded rows to the spine (O(1)/row)."""
        self._coded_list.extend(fresh)
        self.n = len(self._coded_list)


class ColumnarDatabase:
    """Column-array fact store with interned constants and batch joins."""

    __slots__ = ("_intern", "_values", "_tables", "_version", "probe_count",
                 "candidate_calls", "batch_probe_count", "batch_build_count",
                 "batch_dedup_rows", "__weakref__")

    backend = "columnar"

    def __init__(self) -> None:
        #: value -> code, keyed on Python equality: ``1``/``1.0``/``True``
        #: canonicalize to one code, exactly as they collapse to one
        #: element in the dict backend's ``set[Row]`` -- the property the
        #: byte-identical-answers guarantee rests on.
        self._intern: dict[object, int] = {}
        #: code -> first-inserted representative value.
        self._values: list[object] = []
        self._tables: dict[str, dict[int, _Table]] = {}
        self._version = 0
        self.probe_count = 0
        self.candidate_calls = 0
        self.batch_probe_count = 0
        self.batch_build_count = 0
        self.batch_dedup_rows = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped on every successful mutation."""
        return self._version

    # -- encoding ----------------------------------------------------------
    def encode_value(self, value: object) -> int:
        """The code for ``value``, interning it on first sight."""
        code = self._intern.get(value)
        if code is None:
            code = len(self._values)
            self._intern[value] = code
            self._values.append(value)
        return code

    def probe_code(self, value: object) -> int:
        """The code for ``value`` without interning; -1 when absent.

        -1 is never a valid code, so probes and equality guards against
        never-stored constants miss naturally.
        """
        return self._intern.get(value, -1)

    @property
    def values_list(self) -> list[object]:
        """Code -> value decode table (order comparisons decode through it)."""
        return self._values

    def _table(self, predicate: str, arity: int) -> _Table:
        tables = self._tables.setdefault(predicate, {})
        table = tables.get(arity)
        if table is None:
            table = _Table(arity)
            tables[arity] = table
        return table

    def _existing(self, predicate: str, arity: int) -> _Table | None:
        tables = self._tables.get(predicate)
        return tables.get(arity) if tables else None

    # -- mutation ----------------------------------------------------------
    def add(self, predicate: str, row: Row) -> bool:
        """Insert one fact; returns True when it was new."""
        table = self._table(predicate, len(row))
        coded = tuple(self.encode_value(value) for value in row)
        if coded in table.coded:
            return False
        table.coded.add(coded)
        table.append([coded])
        self._version += 1
        return True

    def add_atom(self, atom: Atom) -> bool:
        return self.add(atom.predicate, atom.ground_tuple())

    def add_facts(self, predicate: str, rows: Iterable[Row]) -> int:
        """Bulk-insert value rows; one dedup pass, one version bump."""
        encode = self.encode_value
        by_arity: dict[int, list[CodedRow]] = {}
        for row in rows:
            by_arity.setdefault(len(row), []).append(
                tuple(encode(value) for value in row))
        added = 0
        for arity, coded_rows in by_arity.items():
            added += len(self.insert_coded(predicate, arity, coded_rows))
        return added

    def insert_coded(self, predicate: str, arity: int,
                     rows: Iterable[CodedRow]):
        """Bulk-insert a coded batch; returns the genuinely fresh rows
        (as a list, or the caller's set when it arrived deduplicated).

        The vectorized strategy's store step: set-semantics dedup against
        the table (and within the batch) in one pass, a single version
        bump, and the fresh rows back out as the next semi-naive delta
        batch.  Duplicate rows dropped here land in ``batch_dedup_rows``.
        """
        table = self._table(predicate, arity)
        coded = table.coded
        if isinstance(rows, (set, frozenset)):
            # Rule fires hand over deduplicated sets with no ordering
            # contract: the set difference IS the fresh batch, all at C
            # speed -- crucial on dense workloads where most derived
            # rows are duplicates.
            news = rows - coded
            self.batch_dedup_rows += len(rows) - len(news)
            if news:
                coded |= news
            fresh: Iterable[CodedRow] = news
        else:
            batch = rows if isinstance(rows, list) else list(rows)
            news = set(batch) - coded
            self.batch_dedup_rows += len(batch) - len(news)
            if len(news) == len(batch):
                # The whole batch is fresh and duplicate-free: nothing
                # left to check row by row.
                coded |= news
                fresh = batch
            elif news:
                # Preserve first-occurrence order within a value load.
                fresh = []
                push = fresh.append
                add = coded.add
                for row in batch:
                    if row not in coded:
                        add(row)
                        push(row)
            else:
                fresh = []
        if fresh:
            table.append(fresh)
            self._version += 1
        return fresh

    def merge(self, other) -> None:
        """Bulk-insert every fact of ``other`` (any backend)."""
        for predicate in other.predicates():
            self.add_facts(predicate, other.rows(predicate))

    def copy(self) -> "ColumnarDatabase":
        """An independent copy sharing no mutable state.

        Caches (decoded views, indexes) rebuild lazily in the copy; the
        intern table is copied so codes stay stable.
        """
        out = ColumnarDatabase()
        out._intern = dict(self._intern)
        out._values = list(self._values)
        for predicate, tables in self._tables.items():
            for arity, table in tables.items():
                fresh = out._table(predicate, arity)
                fresh.coded = set(table.coded)
                fresh._coded_list = list(table._coded_list)
                fresh.n = table.n
        out._version = self._version
        return out

    # -- row-level reads (StorageBackend contract) -------------------------
    def _decode(self, coded: CodedRow) -> Row:
        values = self._values
        return tuple(values[code] for code in coded)

    def rows(self, predicate: str) -> set[Row]:
        """All decoded rows of ``predicate`` (cached, all arities)."""
        tables = self._tables.get(predicate)
        if not tables:
            return set()
        if len(tables) == 1:
            return self._decoded_rows(next(iter(tables.values())))
        out: set[Row] = set()
        for table in tables.values():
            out |= self._decoded_rows(table)
        return out

    def _decoded_rows(self, table: _Table) -> set[Row]:
        if table._decoded_upto < table.n:
            decode = self._decode
            coded = table.coded_rows()
            table._decoded.update(
                decode(row) for row in coded[table._decoded_upto:])
            table._decoded_upto = table.n
        return table._decoded

    def contains(self, predicate: str, row: Row) -> bool:
        table = self._existing(predicate, len(row))
        if table is None:
            return False
        probe = self._intern.get
        coded = []
        for value in row:
            code = probe(value)
            if code is None:
                return False
            coded.append(code)
        return tuple(coded) in table.coded

    def predicates(self) -> list[str]:
        return sorted(
            predicate for predicate, tables in self._tables.items()
            if any(table.n for table in tables.values()))

    def __len__(self) -> int:
        return sum(table.n for tables in self._tables.values()
                   for table in tables.values())

    def index(self, predicate: str, positions: tuple[int, ...]):
        """Row-level composite index (decoded), built and extended lazily."""
        merged: dict[tuple, list[Row]] = {}
        tables = self._tables.get(predicate)
        if not tables:
            return merged
        single = len(tables) == 1
        for table in tables.values():
            if any(p >= table.arity for p in positions):
                continue
            entry = table._row_indexes.get(positions)
            if entry is None:
                entry = [{}, 0]
                table._row_indexes[positions] = entry
            index, upto = entry
            if upto < table.n:
                decode = self._decode
                for coded in table.coded_rows()[upto:]:
                    row = decode(coded)
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(row)
                entry[1] = table.n
            if single:
                return index
            for key, bucket in index.items():
                merged.setdefault(key, []).extend(bucket)
        return merged

    def bucket(self, predicate: str, positions: tuple[int, ...],
               key: tuple) -> Iterable[Row]:
        """Decoded rows whose values at ``positions`` equal ``key``."""
        self.probe_count += 1
        return self.index(predicate, positions).get(key, _EMPTY)

    def candidates(self, atom: Atom, subst: Substitution) -> Iterable[Row]:
        """Selectivity-aware probe (mirrors the dict backend exactly)."""
        self.candidate_calls += 1
        best: Iterable[Row] | None = None
        best_size: int | None = None
        for position, term in enumerate(atom.args):
            term = walk(term, subst)
            if isinstance(term, Constant):
                bucket = self.bucket(atom.predicate, (position,), (term.value,))
                size = len(bucket)  # type: ignore[arg-type]
                if best_size is None or size < best_size:
                    best, best_size = bucket, size
                if size == 0:
                    break
        if best is not None:
            return best
        return self.rows(atom.predicate)

    def as_atoms(self) -> Iterator[Atom]:
        for predicate in self.predicates():
            for row in sorted(self.rows(predicate), key=repr):
                yield Atom(predicate, tuple(Constant(v) for v in row))

    # -- batch layer (vectorized strategy) ---------------------------------
    def coded_rows(self, predicate: str, arity: int) -> list[CodedRow]:
        """The whole relation as a coded batch (insertion order)."""
        table = self._existing(predicate, arity)
        return table.coded_rows() if table is not None else []

    def coded_set(self, predicate: str, arity: int) -> set[CodedRow]:
        """Coded-row membership set (the batch anti-join target)."""
        table = self._existing(predicate, arity)
        return table.coded if table is not None else _EMPTY_SET

    def column(self, predicate: str, arity: int, position: int) -> list[int]:
        """One argument position as a code array (lazy column projection)."""
        table = self._existing(predicate, arity)
        return table.columns()[position] if table is not None else []

    def batch_index(self, predicate: str, arity: int,
                    key_positions: tuple[int, ...],
                    keep_positions: tuple[int, ...],
                    eq_pairs: tuple[tuple[int, int], ...] = (),
                    bare_keep: bool = False) -> dict:
        """Build-side hash table: coded key -> list of coded keep-tuples.

        A single-position key maps the bare code (no 1-tuple churn on the
        probe side); multi-position keys map code tuples.  ``bare_keep``
        plays the same trick on the value side -- a single-position keep
        stored as bare codes for consumers (the fused join+project) that
        never concatenate the match onto the probe tuple.  ``eq_pairs``
        filters rows whose repeated-variable positions disagree at build
        time, so probes never re-check them.  Extended incrementally by
        watermark; an empty ``key_positions`` yields the full-scan table
        ``{(): [keep-tuples...]}``.
        """
        table = self._existing(predicate, arity)
        if table is None:
            return {}
        spec = (key_positions, keep_positions, eq_pairs, bare_keep)
        entry = table._batch_indexes.get(spec)
        if entry is None:
            entry = [{}, 0]
            table._batch_indexes[spec] = entry
        index, upto = entry
        if upto < table.n:
            self.batch_build_count += 1
            rows = table.coded_rows()
            single = len(key_positions) == 1
            key0 = key_positions[0] if single else None
            keep0 = keep_positions[0] if bare_keep else None
            setdefault = index.setdefault
            for row in rows[upto:]:
                if eq_pairs and any(row[a] != row[b] for a, b in eq_pairs):
                    continue
                key = row[key0] if single else tuple(row[p] for p in key_positions)
                setdefault(key, []).append(
                    row[keep0] if bare_keep
                    else tuple(row[p] for p in keep_positions))
            entry[1] = table.n
        return index
