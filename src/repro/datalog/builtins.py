"""Built-in comparison predicates.

Evaluated natively on ground arguments during rule evaluation.  Ordered
comparisons require mutually comparable Python values; mixing types
raises, which surfaces workload bugs instead of silently failing joins.
"""

from __future__ import annotations

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.datalog.unify import Substitution, walk
from repro.errors import DatalogError


def evaluate_builtin(atom: Atom, subst: Substitution) -> bool:
    """Truth of a ground built-in comparison under ``subst``."""
    if len(atom.args) != 2:
        raise DatalogError(f"built-in {atom.predicate!r} takes two arguments")
    left = walk(atom.args[0], subst)
    right = walk(atom.args[1], subst)
    if not isinstance(left, Constant) or not isinstance(right, Constant):
        raise DatalogError(
            f"built-in {atom!r} evaluated with unbound argument(s); "
            "safety checking should have rejected this rule"
        )
    a, b = left.value, right.value
    if atom.predicate == "=":
        return a == b
    if atom.predicate == "!=":
        return a != b
    try:
        if atom.predicate == "<":
            return a < b  # type: ignore[operator]
        if atom.predicate == "<=":
            return a <= b  # type: ignore[operator]
        if atom.predicate == ">":
            return a > b  # type: ignore[operator]
        if atom.predicate == ">=":
            return a >= b  # type: ignore[operator]
    except TypeError as exc:
        raise DatalogError(f"incomparable values in {atom!r}: {exc}") from exc
    raise DatalogError(f"unknown built-in predicate {atom.predicate!r}")
