"""Bottom-up evaluation: naive and semi-naive least fixpoints.

This is the engine the reduction semantics (Section 6) targets -- the
CORAL stand-in.  Programs are stratified; each stratum is evaluated to a
least fixpoint before the next begins, so negation always consults a
fully computed lower stratum.

Three strategies:

* ``naive`` -- re-derive everything each round; the textbook baseline
  kept for differential testing and the ablation bench.
* ``seminaive`` -- classic delta iteration: a recursive rule only refires
  when one of its recursive body literals matches a newly derived fact.
* ``compiled`` (the default) -- semi-naive iteration over
  :class:`~repro.datalog.plan.CompiledRule` join plans: each rule body is
  compiled once per stratum into a nested-loop function probing composite
  indexes, with delta-specialized variants for the refiring step.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.datalog.atoms import Atom, Literal
from repro.datalog.builtins import evaluate_builtin
from repro.datalog.database import Database, Row
from repro.datalog.plan import CompiledRule, compile_rule
from repro.datalog.rules import Program, Rule
from repro.datalog.stratify import stratify
from repro.datalog.terms import Variable
from repro.datalog.unify import Substitution, apply_to_atom, match_atom
from repro.errors import DatalogError


def _match_body(
    body: tuple[Literal, ...],
    db: Database,
    subst: Substitution,
    delta_requirement: tuple[int, Database] | None = None,
    index: int = 0,
) -> Iterable[Substitution]:
    """All substitutions satisfying ``body[index:]`` against ``db``.

    ``delta_requirement = (position, delta_db)`` forces the literal at
    ``position`` to match inside ``delta_db`` (semi-naive refiring).
    """
    if index == len(body):
        yield subst
        return
    literal = body[index]
    atom = literal.atom
    if atom.is_builtin:
        if evaluate_builtin(atom, subst):
            yield from _match_body(body, db, subst, delta_requirement, index + 1)
        return
    if not literal.positive:
        # Safety guarantees the atom is ground here.
        grounded = apply_to_atom(atom, subst)
        if not grounded.is_ground():
            raise DatalogError(f"negated literal {grounded!r} not ground at evaluation time")
        if not db.contains(grounded.predicate, grounded.ground_tuple()):
            yield from _match_body(body, db, subst, delta_requirement, index + 1)
        return
    source: Database = db
    if delta_requirement is not None and delta_requirement[0] == index:
        source = delta_requirement[1]
    for row in list(source.candidates(atom, subst)):
        extended = match_atom(atom, row, subst)
        if extended is not None:
            yield from _match_body(body, db, extended, delta_requirement, index + 1)


def reorder_body(body: tuple[Literal, ...]) -> tuple[Literal, ...]:
    """Reorder a rule body so negatives/built-ins run once ground.

    Positive literals keep their relative order; each negated or built-in
    literal is emitted as soon as every one of its variables is bound by
    the positives already emitted.  Safety guarantees this terminates with
    nothing left over.
    """
    positives = [l for l in body if l.positive and not l.atom.is_builtin]
    deferred = [l for l in body if not (l.positive and not l.atom.is_builtin)]
    ordered: list[Literal] = []
    bound: set[Variable] = set()

    def flush() -> None:
        emitted = True
        while emitted:
            emitted = False
            for literal in list(deferred):
                if literal.variables() <= bound:
                    ordered.append(literal)
                    deferred.remove(literal)
                    emitted = True

    flush()
    for literal in positives:
        ordered.append(literal)
        bound |= literal.variables()
        flush()
    ordered.extend(deferred)  # unsafe leftovers surface as evaluation errors
    return tuple(ordered)


def greedy_join_order(body: tuple[Literal, ...]) -> tuple[Literal, ...]:
    """Reorder positive literals most-bound-first (a classic greedy
    sideways-information-passing heuristic).

    At each step the literal with the highest fraction of bound arguments
    (constants or variables bound by already-placed literals) is placed
    next, with arity and the original position as tie-breakers.  Negated
    and built-in literals are untouched here; :func:`reorder_body` slots
    them in once ground.
    """
    positives = [
        (index, literal) for index, literal in enumerate(body)
        if literal.positive and not literal.atom.is_builtin
    ]
    others = [
        literal for literal in body
        if not (literal.positive and not literal.atom.is_builtin)
    ]
    ordered: list[Literal] = []
    bound: set[Variable] = set()
    remaining = list(positives)
    while remaining:
        def score(entry: tuple[int, Literal]) -> tuple:
            index, literal = entry
            args = literal.atom.args
            bound_args = sum(
                1 for a in args if not isinstance(a, Variable) or a in bound
            )
            fraction = bound_args / len(args) if args else 1.0
            return (-fraction, len(args), index)

        remaining.sort(key=score)
        index, literal = remaining.pop(0)
        ordered.append(literal)
        bound |= literal.variables()
    return tuple(ordered) + tuple(others)


def _fire_rule(rule: Rule, db: Database,
               delta_requirement: tuple[int, Database] | None = None) -> list[tuple[str, Row]]:
    """All head facts derivable by one rule in the current state."""
    derived: list[tuple[str, Row]] = []
    for subst in _match_body(rule.body, db, {}, delta_requirement):
        head = apply_to_atom(rule.head, subst)
        if not head.is_ground():
            raise DatalogError(f"derived non-ground head {head!r}; rule is unsafe")
        derived.append((head.predicate, head.ground_tuple()))
    return derived


def _stratum_rules(program: Program, stratum_predicates: set[str],
                   optimize: bool = False) -> list[Rule]:
    rules = []
    for r in program.rules:
        if r.head.predicate not in stratum_predicates:
            continue
        body = greedy_join_order(r.body) if optimize else r.body
        rules.append(Rule(r.head, reorder_body(body)))
    return rules


def _evaluate_stratum_compiled(rules: list[Rule], db: Database,
                               stratum_predicates: set[str]) -> None:
    """Semi-naive iteration driven by compiled join plans."""
    compiled = [compile_rule(rule, stratum_predicates) for rule in rules]
    delta = Database()
    for plan in compiled:
        predicate = plan.head_predicate
        for row in plan.fire(db):
            if db.add(predicate, row):
                delta.add(predicate, row)
    recursive = [plan for plan in compiled if plan.delta_variants]
    while len(delta):
        new_delta = Database()
        for plan in recursive:
            predicate = plan.head_predicate
            for delta_predicate, fire in plan.delta_variants:
                if not delta.rows(delta_predicate):
                    continue
                for row in fire(db, delta):
                    if db.add(predicate, row):
                        new_delta.add(predicate, row)
        delta = new_delta


def _evaluate_stratum_naive(rules: list[Rule], db: Database) -> None:
    changed = True
    while changed:
        changed = False
        for rule in rules:
            for predicate, row in _fire_rule(rule, db):
                if db.add(predicate, row):
                    changed = True


def _evaluate_stratum_seminaive(rules: list[Rule], db: Database,
                                stratum_predicates: set[str]) -> None:
    # Round 0: fire every rule once against the current database.
    delta = Database()
    for rule in rules:
        for predicate, row in _fire_rule(rule, db):
            if db.add(predicate, row):
                delta.add(predicate, row)
    recursive = [
        rule for rule in rules
        if any(l.positive and not l.atom.is_builtin and l.predicate in stratum_predicates
               for l in rule.body)
    ]
    while len(delta):
        new_delta = Database()
        for rule in recursive:
            for position, literal in enumerate(rule.body):
                if not literal.positive or literal.atom.is_builtin:
                    continue
                if literal.predicate not in stratum_predicates:
                    continue
                if not delta.rows(literal.predicate):
                    continue
                for predicate, row in _fire_rule(rule, db, (position, delta)):
                    if db.add(predicate, row):
                        new_delta.add(predicate, row)
        delta = new_delta


def evaluate(program: Program, strategy: str = "compiled",
             optimize_joins: bool = False) -> Database:
    """The stratified least model of ``program`` as a :class:`Database`.

    ``optimize_joins`` reorders rule bodies most-bound-first before
    evaluation (see :func:`greedy_join_order`); answers are identical,
    only the join work changes -- ``bench_ablation_strategies`` measures
    the effect.  The ``compiled`` strategy always applies the greedy
    order, since literal order is part of the compiled plan.
    """
    if strategy not in ("naive", "seminaive", "compiled"):
        raise DatalogError(f"unknown evaluation strategy {strategy!r}")
    program.check_safety()
    assignment = stratify(program)
    db = Database()
    for fact in program.facts:
        db.add_atom(fact)
    if not program.rules:
        return db
    max_stratum = max(assignment.values(), default=0)
    for level in range(max_stratum + 1):
        stratum_predicates = {p for p, s in assignment.items() if s == level}
        rules = _stratum_rules(program, stratum_predicates,
                               optimize_joins or strategy == "compiled")
        if not rules:
            continue
        if strategy == "naive":
            _evaluate_stratum_naive(rules, db)
        elif strategy == "seminaive":
            _evaluate_stratum_seminaive(rules, db, stratum_predicates)
        else:
            _evaluate_stratum_compiled(rules, db, stratum_predicates)
    return db


def evaluate_goal_rules(db: Database, rules: Iterable[Rule]) -> dict[str, set[Row]]:
    """Fire non-recursive goal rules once against a computed model.

    The rules' head predicates must not occur in any body (true for the
    reduction's ``__answer`` rules); ``db`` is read, never written, so a
    cached least model can answer repeated queries without re-running the
    fixpoint.  Returns derived rows grouped by head predicate.
    """
    derived: dict[str, set[Row]] = {}
    for rule in rules:
        rule.check_safety()
        ordered = Rule(rule.head, reorder_body(greedy_join_order(rule.body)))
        plan = compile_rule(ordered)
        derived.setdefault(plan.head_predicate, set()).update(plan.fire(db))
    return derived


def query(program: Program, goal: Atom, strategy: str = "compiled") -> list[Substitution]:
    """Answer substitutions for ``goal`` against the least model."""
    db = evaluate(program, strategy)
    return query_database(db, goal)


def query_database(db: Database, goal: Atom) -> list[Substitution]:
    """Match a goal atom against an already-computed database."""
    answers: list[Substitution] = []
    for row in db.candidates(goal, {}):
        subst = match_atom(goal, row, {})
        if subst is not None:
            answers.append(subst)
    return answers


def answer_rows(db: Database, goal: Atom) -> set[Row]:
    """Ground rows the goal maps to (projection of the answers)."""
    rows: set[Row] = set()
    for subst in query_database(db, goal):
        grounded = apply_to_atom(goal, subst)
        rows.add(grounded.ground_tuple())
    return rows
