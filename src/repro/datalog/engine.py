"""Bottom-up evaluation: naive and semi-naive least fixpoints.

This is the engine the reduction semantics (Section 6) targets -- the
CORAL stand-in.  Programs are stratified; each stratum is evaluated to a
least fixpoint before the next begins, so negation always consults a
fully computed lower stratum.

Four strategies:

* ``naive`` -- re-derive everything each round; the textbook baseline
  kept for differential testing and the ablation bench.
* ``seminaive`` -- classic delta iteration: a recursive rule only refires
  when one of its recursive body literals matches a newly derived fact.
* ``compiled`` (the default) -- semi-naive iteration over
  :class:`~repro.datalog.plan.CompiledRule` join plans: each rule body is
  compiled once per stratum into a nested-loop function probing composite
  indexes, with delta-specialized variants for the refiring step.
* ``vectorized`` -- semi-naive iteration over
  :class:`~repro.datalog.plan.BatchRule` batch pipelines against the
  columnar backend: each round probes the entire delta batch through
  build-side hash tables in a handful of comprehensions over interned
  codes, instead of one Python frame per candidate row.

The first three run unchanged on either storage backend (they only use
the row-level :class:`~repro.datalog.storage.StorageBackend` contract);
``vectorized`` requires -- and, when no backend is forced, implies --
the columnar backend.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.datalog.atoms import Atom, Literal
from repro.datalog.builtins import evaluate_builtin
from repro.datalog.database import Database, Row
from repro.datalog.plan import CompiledRule, compile_batch_rule, compile_rule
from repro.datalog.rules import Program, Rule
from repro.datalog.storage import make_database, resolve_backend
from repro.datalog.stratify import stratify
from repro.datalog.terms import Variable
from repro.datalog.unify import Substitution, apply_to_atom, match_atom
from repro.errors import BudgetExceededError, DatalogError
from repro.obs.budget import BudgetMeter, EvaluationBudget
from repro.obs.context import current as _current_obs
from repro.obs.metrics import NULL_METRICS
from repro.obs.trace import NULL_SPAN

#: Cap on per-round trace spans per stratum: a runaway fixpoint (the very
#: case budgets exist for) must not also explode the span tree.  Rounds
#: past the cap are still counted in the metrics, just not recorded as
#: individual spans.
MAX_ROUND_SPANS = 64


def _match_body(
    body: tuple[Literal, ...],
    db: Database,
    subst: Substitution,
    delta_requirement: tuple[int, Database] | None = None,
    index: int = 0,
) -> Iterable[Substitution]:
    """All substitutions satisfying ``body[index:]`` against ``db``.

    ``delta_requirement = (position, delta_db)`` forces the literal at
    ``position`` to match inside ``delta_db`` (semi-naive refiring).
    """
    if index == len(body):
        yield subst
        return
    literal = body[index]
    atom = literal.atom
    if atom.is_builtin:
        if evaluate_builtin(atom, subst):
            yield from _match_body(body, db, subst, delta_requirement, index + 1)
        return
    if not literal.positive:
        # Safety guarantees the atom is ground here.
        grounded = apply_to_atom(atom, subst)
        if not grounded.is_ground():
            raise DatalogError(f"negated literal {grounded!r} not ground at evaluation time")
        if not db.contains(grounded.predicate, grounded.ground_tuple()):
            yield from _match_body(body, db, subst, delta_requirement, index + 1)
        return
    source: Database = db
    if delta_requirement is not None and delta_requirement[0] == index:
        source = delta_requirement[1]
    # No defensive copy: _fire_rule drains this generator into a list
    # before any caller mutates the database, so the live bucket/set from
    # candidates() is never resized under us.
    for row in source.candidates(atom, subst):
        extended = match_atom(atom, row, subst)
        if extended is not None:
            yield from _match_body(body, db, extended, delta_requirement, index + 1)


def reorder_body(body: tuple[Literal, ...], rule: Rule | None = None) -> tuple[Literal, ...]:
    """Reorder a rule body so negatives/built-ins run once ground.

    Positive literals keep their relative order; each negated or built-in
    literal is emitted as soon as every one of its variables is bound by
    the positives already emitted.  Safety guarantees nothing is left
    over; a leftover means the rule is not range-restricted and raises
    :class:`~repro.errors.DatalogError` *here*, naming the rule and the
    offending literal, instead of surfacing later as a cryptic
    "negated literal not ground at evaluation time".
    """
    positives = [l for l in body if l.positive and not l.atom.is_builtin]
    deferred = [l for l in body if not (l.positive and not l.atom.is_builtin)]
    ordered: list[Literal] = []
    bound: set[Variable] = set()

    def flush() -> None:
        emitted = True
        while emitted:
            emitted = False
            for literal in list(deferred):
                if literal.variables() <= bound:
                    ordered.append(literal)
                    deferred.remove(literal)
                    emitted = True

    flush()
    for literal in positives:
        ordered.append(literal)
        bound |= literal.variables()
        flush()
    if deferred:
        offender = deferred[0]
        kind = "negated" if not offender.positive else "built-in"
        unbound = sorted(v.name for v in offender.variables() - bound)
        where = f" of rule {rule!r}" if rule is not None else ""
        raise DatalogError(
            f"cannot order body{where}: variable(s) {unbound} of {kind} "
            f"literal {offender!r} are never bound by a positive literal "
            "(rule is not range-restricted)"
        )
    return tuple(ordered)


def greedy_join_order(body: tuple[Literal, ...]) -> tuple[Literal, ...]:
    """Reorder positive literals most-bound-first (a classic greedy
    sideways-information-passing heuristic).

    At each step the literal with the highest fraction of bound arguments
    (constants or variables bound by already-placed literals) is placed
    next, with arity and the original position as tie-breakers.  Negated
    and built-in literals are untouched here; :func:`reorder_body` slots
    them in once ground.
    """
    positives = [
        (index, literal) for index, literal in enumerate(body)
        if literal.positive and not literal.atom.is_builtin
    ]
    others = [
        literal for literal in body
        if not (literal.positive and not literal.atom.is_builtin)
    ]
    ordered: list[Literal] = []
    bound: set[Variable] = set()
    remaining = list(positives)
    while remaining:
        def score(entry: tuple[int, Literal]) -> tuple:
            index, literal = entry
            args = literal.atom.args
            bound_args = sum(
                1 for a in args if not isinstance(a, Variable) or a in bound
            )
            fraction = bound_args / len(args) if args else 1.0
            return (-fraction, len(args), index)

        remaining.sort(key=score)
        index, literal = remaining.pop(0)
        ordered.append(literal)
        bound |= literal.variables()
    return tuple(ordered) + tuple(others)


def _fire_rule(rule: Rule, db: Database,
               delta_requirement: tuple[int, Database] | None = None) -> list[tuple[str, Row]]:
    """All head facts derivable by one rule in the current state."""
    derived: list[tuple[str, Row]] = []
    for subst in _match_body(rule.body, db, {}, delta_requirement):
        head = apply_to_atom(rule.head, subst)
        if not head.is_ground():
            raise DatalogError(f"derived non-ground head {head!r}; rule is unsafe")
        derived.append((head.predicate, head.ground_tuple()))
    return derived


def _stratum_rules(program: Program, stratum_predicates: set[str],
                   optimize: bool = False) -> list[Rule]:
    rules = []
    for r in program.rules:
        if r.head.predicate not in stratum_predicates:
            continue
        body = greedy_join_order(r.body) if optimize else r.body
        rules.append(Rule(r.head, reorder_body(body, r)))
    return rules


def _round_span(recorder, rounds: int, scope: str):
    """A per-round span, capped so runaway fixpoints stay traceable."""
    if rounds > MAX_ROUND_SPANS:
        return NULL_SPAN
    return recorder.span(f"round[{rounds}]", scope=scope)


def _evaluate_stratum_compiled(rules: list[Rule], db: Database,
                               stratum_predicates: set[str],
                               recorder, metrics, meter, scope: str) -> None:
    """Semi-naive iteration driven by compiled join plans."""
    compiled = [compile_rule(rule, stratum_predicates) for rule in rules]
    labels = [repr(plan.rule) for plan in compiled]
    delta = Database()
    with recorder.span("rule-fire", scope=scope, phase="initial") as span:
        for plan, label in zip(compiled, labels):
            rows = plan.fire(db)
            metrics.rule_fired(label, len(rows))
            predicate = plan.head_predicate
            for row in rows:
                if db.add(predicate, row):
                    delta.add(predicate, row)
        span.set(delta=len(delta))
    if meter is not None:
        meter.charge_rows(len(delta), scope)
    recursive = [(plan, label) for plan, label in zip(compiled, labels)
                 if plan.delta_variants]
    rounds = 0
    while len(delta):
        rounds += 1
        if meter is not None:
            meter.begin_round(scope)
        with _round_span(recorder, rounds, scope) as span:
            new_delta = Database()
            for plan, label in recursive:
                predicate = plan.head_predicate
                for delta_predicate, fire in plan.delta_variants:
                    if not delta.rows(delta_predicate):
                        continue
                    rows = fire(db, delta)
                    metrics.rule_fired(label, len(rows))
                    for row in rows:
                        if db.add(predicate, row):
                            new_delta.add(predicate, row)
            span.set(delta=len(new_delta))
        if meter is not None:
            meter.charge_rows(len(new_delta), scope)
        delta = new_delta
    metrics.record_rounds(scope, rounds + 1)


def _merge_delta(delta: dict, key: tuple[str, int], fresh) -> None:
    """File a fresh batch (list or set) under ``key`` without copying.

    The frontier batches only ever get iterated, so the first
    contribution is stored as-is; a list is materialized only when a
    second rule head lands on the same ``(predicate, arity)``.
    """
    have = delta.get(key)
    if have is None:
        delta[key] = fresh
    else:
        if not isinstance(have, list):
            have = list(have)
            delta[key] = have
        have.extend(fresh)


def _evaluate_stratum_vectorized(rules: list[Rule], db, stratum_predicates: set[str],
                                 recorder, metrics, meter, scope: str) -> None:
    """Semi-naive iteration driven by batch pipelines (columnar only).

    Deltas are coded-row batches keyed ``(predicate, arity)``;
    :meth:`~repro.datalog.columnar.ColumnarDatabase.insert_coded` stores
    a whole derived batch with one dedup pass and hands back the
    genuinely fresh rows as the next round's frontier.
    """
    compiled = [compile_batch_rule(rule, stratum_predicates) for rule in rules]
    labels = [repr(plan.rule) for plan in compiled]
    delta: dict[tuple[str, int], list | set] = {}
    with recorder.span("rule-fire", scope=scope, phase="initial") as span:
        total = 0
        for plan, label in zip(compiled, labels):
            rows = plan.fire(db)
            metrics.rule_fired(label, len(rows))
            fresh = db.insert_coded(plan.head_predicate, plan.head_arity, rows)
            if fresh:
                _merge_delta(delta, (plan.head_predicate, plan.head_arity),
                             fresh)
                total += len(fresh)
        span.set(delta=total)
    if meter is not None:
        meter.charge_rows(total, scope)
    recursive = [(plan, label) for plan, label in zip(compiled, labels)
                 if plan.delta_variants]
    rounds = 0
    while delta:
        rounds += 1
        if meter is not None:
            meter.begin_round(scope)
        with _round_span(recorder, rounds, scope) as span:
            new_delta: dict[tuple[str, int], list | set] = {}
            total = 0
            for plan, label in recursive:
                for delta_predicate, delta_arity, fire in plan.delta_variants:
                    batch = delta.get((delta_predicate, delta_arity))
                    if not batch:
                        continue
                    rows = fire(db, batch)
                    metrics.rule_fired(label, len(rows))
                    fresh = db.insert_coded(plan.head_predicate,
                                            plan.head_arity, rows)
                    if fresh:
                        _merge_delta(new_delta,
                                     (plan.head_predicate, plan.head_arity),
                                     fresh)
                        total += len(fresh)
            span.set(delta=total)
        if meter is not None:
            meter.charge_rows(total, scope)
        delta = new_delta
    metrics.record_rounds(scope, rounds + 1)


def _evaluate_stratum_naive(rules: list[Rule], db: Database,
                            recorder, metrics, meter, scope: str) -> None:
    labels = [repr(rule) for rule in rules]
    changed = True
    rounds = 0
    while changed:
        rounds += 1
        if meter is not None:
            meter.begin_round(scope)
        with _round_span(recorder, rounds, scope) as span:
            changed = False
            added = 0
            for rule, label in zip(rules, labels):
                derived = _fire_rule(rule, db)
                metrics.rule_fired(label, len(derived))
                for predicate, row in derived:
                    if db.add(predicate, row):
                        changed = True
                        added += 1
            span.set(delta=added)
        if meter is not None and added:
            meter.charge_rows(added, scope)
    metrics.record_rounds(scope, rounds)


def _evaluate_stratum_seminaive(rules: list[Rule], db: Database,
                                stratum_predicates: set[str],
                                recorder, metrics, meter, scope: str) -> None:
    labels = [repr(rule) for rule in rules]
    # Round 0: fire every rule once against the current database.
    delta = Database()
    with recorder.span("rule-fire", scope=scope, phase="initial") as span:
        for rule, label in zip(rules, labels):
            derived = _fire_rule(rule, db)
            metrics.rule_fired(label, len(derived))
            for predicate, row in derived:
                if db.add(predicate, row):
                    delta.add(predicate, row)
        span.set(delta=len(delta))
    if meter is not None:
        meter.charge_rows(len(delta), scope)
    recursive = [
        (rule, label) for rule, label in zip(rules, labels)
        if any(l.positive and not l.atom.is_builtin and l.predicate in stratum_predicates
               for l in rule.body)
    ]
    rounds = 0
    while len(delta):
        rounds += 1
        if meter is not None:
            meter.begin_round(scope)
        with _round_span(recorder, rounds, scope) as span:
            new_delta = Database()
            for rule, label in recursive:
                for position, literal in enumerate(rule.body):
                    if not literal.positive or literal.atom.is_builtin:
                        continue
                    if literal.predicate not in stratum_predicates:
                        continue
                    if not delta.rows(literal.predicate):
                        continue
                    derived = _fire_rule(rule, db, (position, delta))
                    metrics.rule_fired(label, len(derived))
                    for predicate, row in derived:
                        if db.add(predicate, row):
                            new_delta.add(predicate, row)
            span.set(delta=len(new_delta))
        if meter is not None:
            meter.charge_rows(len(new_delta), scope)
        delta = new_delta
    metrics.record_rounds(scope, rounds + 1)


def evaluate(program: Program, strategy: str = "compiled",
             optimize_joins: bool = False,
             budget: EvaluationBudget | None = None,
             analyze: bool = False,
             backend: str | None = None):
    """The stratified least model of ``program`` as a fact store.

    ``optimize_joins`` reorders rule bodies most-bound-first before
    evaluation (see :func:`greedy_join_order`); answers are identical,
    only the join work changes -- ``bench_ablation_strategies`` measures
    the effect.  The ``compiled`` and ``vectorized`` strategies always
    apply the greedy order, since literal order is part of the plan.

    ``backend`` picks the storage backend (explicit argument >
    ``MULTILOG_BACKEND`` env var > ``dict``); answers are identical
    across backends.  The ``vectorized`` strategy requires the columnar
    backend and selects it when none is forced; pairing it with an
    explicit ``dict`` raises :class:`~repro.errors.DatalogError`.

    Observability: spans, per-rule firing counts and join-probe totals
    are reported into the ambient :class:`repro.obs.ObsContext` (no-ops
    unless one is installed via :func:`repro.obs.use`).  ``budget``
    bounds the evaluation (rows / rounds / wall clock) and wins over any
    ambient budget meter; an overrun raises
    :class:`~repro.errors.BudgetExceededError` with the partial metrics
    attached when a collector is active.

    ``analyze=True`` runs the full static analyzer (:mod:`repro.
    analysis`) first and raises :class:`DatalogError` listing *every*
    error-severity finding -- unlike the default fail-fast path, which
    stops at the first unsafe rule or stratification failure.
    """
    if strategy not in ("naive", "seminaive", "compiled", "vectorized"):
        raise DatalogError(f"unknown evaluation strategy {strategy!r}")
    if strategy == "vectorized":
        if backend is not None and resolve_backend(backend) != "columnar":
            raise DatalogError(
                "the vectorized strategy requires the columnar backend; "
                f"got backend={backend!r}")
        backend = "columnar"
    ctx = _current_obs()
    recorder, metrics = ctx.recorder, ctx.metrics
    meter = BudgetMeter(budget) if budget is not None else ctx.meter
    if analyze:
        from repro.analysis import analyze_program
        report = analyze_program(program)
        if not report.ok:
            raise DatalogError(
                "static analysis rejected the program:\n" + report.render_text())
    program.check_safety()
    with recorder.span("evaluate", strategy=strategy) as evaluate_span:
        with recorder.span("stratify") as span:
            assignment = stratify(program)
            span.set(strata=max(assignment.values(), default=0) + 1)
        db = make_database(backend)
        facts_by_predicate: dict[str, list[Row]] = {}
        for fact in program.facts:
            facts_by_predicate.setdefault(fact.predicate, []).append(
                fact.ground_tuple())
        for predicate, rows in facts_by_predicate.items():
            db.add_facts(predicate, rows)
        if not program.rules:
            evaluate_span.set(facts=len(db))
            return db
        probes_before = db.probe_count
        candidates_before = db.candidate_calls
        batch_before = (db.batch_probe_count, db.batch_build_count,
                        db.batch_dedup_rows)
        try:
            max_stratum = max(assignment.values(), default=0)
            for level in range(max_stratum + 1):
                stratum_predicates = {p for p, s in assignment.items() if s == level}
                rules = _stratum_rules(
                    program, stratum_predicates,
                    optimize_joins or strategy in ("compiled", "vectorized"))
                if not rules:
                    continue
                scope = f"stratum[{level}]"
                with recorder.span(scope, rules=len(rules)) as span:
                    if strategy == "naive":
                        _evaluate_stratum_naive(rules, db, recorder, metrics,
                                                meter, scope)
                    elif strategy == "seminaive":
                        _evaluate_stratum_seminaive(rules, db, stratum_predicates,
                                                    recorder, metrics, meter, scope)
                    elif strategy == "vectorized":
                        _evaluate_stratum_vectorized(rules, db, stratum_predicates,
                                                     recorder, metrics, meter, scope)
                    else:
                        _evaluate_stratum_compiled(rules, db, stratum_predicates,
                                                   recorder, metrics, meter, scope)
                    span.set(facts=len(db))
        except BudgetExceededError as exc:
            metrics.add_probes(db.probe_count - probes_before)
            metrics.add_candidate_calls(db.candidate_calls - candidates_before)
            metrics.add_batch_ops(db.batch_probe_count - batch_before[0],
                                  db.batch_build_count - batch_before[1],
                                  db.batch_dedup_rows - batch_before[2])
            if exc.metrics is None and metrics.enabled:
                exc.metrics = metrics.snapshot(recorder)
            # Everything derived before the abort; the resilience layer
            # serves PartialResults from it when the caller opts in.
            exc.partial_database = db
            raise
        metrics.add_probes(db.probe_count - probes_before)
        metrics.add_candidate_calls(db.candidate_calls - candidates_before)
        metrics.add_batch_ops(db.batch_probe_count - batch_before[0],
                              db.batch_build_count - batch_before[1],
                              db.batch_dedup_rows - batch_before[2])
        evaluate_span.set(facts=len(db))
    return db


def evaluate_goal_rules(db: Database, rules: Iterable[Rule]) -> dict[str, set[Row]]:
    """Fire non-recursive goal rules once against a computed model.

    The rules' head predicates must not occur in any body (true for the
    reduction's ``__answer`` rules); ``db`` is read, never written, so a
    cached least model can answer repeated queries without re-running the
    fixpoint.  Returns derived rows grouped by head predicate.
    """
    ctx = _current_obs()
    recorder, metrics, meter = ctx.recorder, ctx.metrics, ctx.meter
    probes_before = db.probe_count
    candidates_before = db.candidate_calls
    derived: dict[str, set[Row]] = {}
    with recorder.span("answer-rules") as span:
        for rule in rules:
            if meter is not None:
                meter.check_time("answer-rules")
            rule.check_safety()
            ordered = Rule(rule.head, reorder_body(greedy_join_order(rule.body), rule))
            plan = compile_rule(ordered)
            rows = plan.fire(db)
            metrics.rule_fired(repr(plan.rule), len(rows))
            derived.setdefault(plan.head_predicate, set()).update(rows)
        span.set(answers=sum(len(rows) for rows in derived.values()))
    metrics.add_probes(db.probe_count - probes_before)
    metrics.add_candidate_calls(db.candidate_calls - candidates_before)
    return derived


def query(program: Program, goal: Atom, strategy: str = "compiled") -> list[Substitution]:
    """Answer substitutions for ``goal`` against the least model."""
    db = evaluate(program, strategy)
    return query_database(db, goal)


def query_database(db: Database, goal: Atom) -> list[Substitution]:
    """Match a goal atom against an already-computed database."""
    answers: list[Substitution] = []
    for row in db.candidates(goal, {}):
        subst = match_atom(goal, row, {})
        if subst is not None:
            answers.append(subst)
    return answers


def answer_rows(db: Database, goal: Atom) -> set[Row]:
    """Ground rows the goal maps to (projection of the answers)."""
    rows: set[Row] = set()
    for subst in query_database(db, goal):
        grounded = apply_to_atom(goal, subst)
        rows.add(grounded.ground_tuple())
    return rows
