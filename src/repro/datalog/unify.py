"""Substitutions, matching and unification.

The bottom-up engine only ever *matches* rule literals against ground
facts, but the top-down resolver and the MultiLog operational prover need
full (function-free) unification, so both are provided.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.datalog.atoms import Atom, Literal
from repro.datalog.terms import Constant, Term, Variable

Substitution = dict[Variable, Term]


def walk(term: Term, subst: Mapping[Variable, Term]) -> Term:
    """Resolve a term through the substitution until fixed."""
    while isinstance(term, Variable) and term in subst:
        term = subst[term]
    return term


def apply_to_term(term: Term, subst: Mapping[Variable, Term]) -> Term:
    return walk(term, subst)


def apply_to_atom(atom: Atom, subst: Mapping[Variable, Term]) -> Atom:
    """A copy of ``atom`` with the substitution applied."""
    return Atom(atom.predicate, tuple(walk(a, subst) for a in atom.args))


def apply_to_literal(literal: Literal, subst: Mapping[Variable, Term]) -> Literal:
    return Literal(apply_to_atom(literal.atom, subst), literal.positive)


def unify_terms(a: Term, b: Term, subst: Substitution) -> Substitution | None:
    """Extend ``subst`` so that ``a`` and ``b`` become equal, or ``None``.

    The input substitution is not mutated.
    """
    a = walk(a, subst)
    b = walk(b, subst)
    if a == b:
        return subst
    if isinstance(a, Variable):
        out = dict(subst)
        out[a] = b
        return out
    if isinstance(b, Variable):
        out = dict(subst)
        out[b] = a
        return out
    return None  # two distinct constants


def unify_atoms(a: Atom, b: Atom, subst: Substitution | None = None) -> Substitution | None:
    """Unify two atoms; returns the extended substitution or ``None``."""
    if a.predicate != b.predicate or len(a.args) != len(b.args):
        return None
    current: Substitution | None = dict(subst) if subst else {}
    for ta, tb in zip(a.args, b.args):
        current = unify_terms(ta, tb, current)
        if current is None:
            return None
    return current


def match_atom(pattern: Atom, fact_row: tuple[object, ...], subst: Substitution) -> Substitution | None:
    """Match a (possibly partially bound) atom against a ground fact row.

    One-way matching: variables in the pattern bind to the fact's
    constants; a bound variable must agree with the row.
    """
    if len(pattern.args) != len(fact_row):
        return None
    out: Substitution | None = None
    for term, value in zip(pattern.args, fact_row):
        term = walk(term, out if out is not None else subst)
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            if out is None:
                out = dict(subst)
            out[term] = Constant(value)
    return out if out is not None else dict(subst)


def rename_apart(atoms: list[Atom], suffix: str) -> list[Atom]:
    """Rename every variable in ``atoms`` with a unique suffix."""
    return [
        Atom(a.predicate, tuple(
            t.renamed(suffix) if isinstance(t, Variable) else t for t in a.args
        ))
        for a in atoms
    ]
