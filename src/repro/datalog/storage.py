"""The storage-backend seam: protocol, registry and factory.

The engine evaluates against anything satisfying :class:`StorageBackend`
-- the row-level contract every strategy (naive, semi-naive, compiled)
programs against.  Two implementations ship:

* ``dict`` -- :class:`repro.datalog.database.Database`, the original
  per-predicate ``set[Row]`` store with lazy composite hash indexes; the
  default, and the reference semantics for the differential suite.
* ``columnar`` -- :class:`repro.datalog.columnar.ColumnarDatabase`,
  per-predicate column arrays over dictionary-encoded constants with a
  batch join API on top; required by (and implied by) the ``vectorized``
  strategy.

Backend selection resolves in precedence order: an explicit argument
(``evaluate(..., backend=...)``, ``MultiLogSession(..., backend=...)``,
``--backend``), then the ``MULTILOG_BACKEND`` environment variable, then
``dict``.  Answers are byte-identical across backends -- the backend x
strategy differential matrix pins that down.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.errors import DatalogError

if TYPE_CHECKING:
    from repro.datalog.atoms import Atom
    from repro.datalog.database import Row
    from repro.datalog.unify import Substitution

#: registered backend names, default first.
BACKENDS = ("dict", "columnar")

#: environment variable consulted when no explicit backend is given.
BACKEND_ENV = "MULTILOG_BACKEND"


@runtime_checkable
class StorageBackend(Protocol):
    """What every fact store must provide to the evaluation strategies.

    The contract is row-level and value-typed: ``rows``/``bucket``/
    ``candidates`` speak decoded Python values regardless of the internal
    representation, so the interpreted and compiled strategies run
    unchanged on any backend.  Backends may expose extra batch APIs (see
    :class:`~repro.datalog.columnar.ColumnarDatabase`) that only the
    ``vectorized`` strategy uses.
    """

    #: registry name of this implementation (``"dict"``, ``"columnar"``).
    backend: str

    @property
    def version(self) -> int: ...

    def add(self, predicate: str, row: "Row") -> bool: ...

    def add_atom(self, atom: "Atom") -> bool: ...

    def add_facts(self, predicate: str, rows: Iterable["Row"]) -> int: ...

    def rows(self, predicate: str) -> set["Row"]: ...

    def contains(self, predicate: str, row: "Row") -> bool: ...

    def bucket(self, predicate: str, positions: tuple[int, ...],
               key: tuple) -> Iterable["Row"]: ...

    def candidates(self, atom: "Atom", subst: "Substitution") -> Iterable["Row"]: ...

    def predicates(self) -> list[str]: ...

    def as_atoms(self) -> Iterator["Atom"]: ...

    def __len__(self) -> int: ...


def resolve_backend(backend: str | None = None) -> str:
    """The effective backend name: explicit > ``MULTILOG_BACKEND`` > dict."""
    name = backend
    if name is None or name == "":
        name = os.environ.get(BACKEND_ENV) or "dict"
    if name not in BACKENDS:
        raise DatalogError(
            f"unknown storage backend {name!r}; available: {', '.join(BACKENDS)}")
    return name


def make_database(backend: str | None = None):
    """A fresh fact store for the resolved backend name."""
    name = resolve_backend(backend)
    if name == "columnar":
        from repro.datalog.columnar import ColumnarDatabase

        return ColumnarDatabase()
    from repro.datalog.database import Database

    return Database()
