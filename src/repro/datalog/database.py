"""The fact store used by the bottom-up engine.

Facts are rows (tuples of Python values) grouped per predicate.  A lazy
single-column hash index accelerates matching when a literal arrives with
at least one bound argument -- the engine picks the first bound position
and probes the index instead of scanning the extension.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.datalog.unify import Substitution, walk

Row = tuple[object, ...]


class Database:
    """Mutable set of ground facts with per-column indexes."""

    def __init__(self) -> None:
        self._facts: dict[str, set[Row]] = {}
        self._indexes: dict[tuple[str, int], dict[object, list[Row]]] = {}

    # ------------------------------------------------------------------
    def add(self, predicate: str, row: Row) -> bool:
        """Insert a fact; returns True when it was new."""
        rows = self._facts.setdefault(predicate, set())
        if row in rows:
            return False
        rows.add(row)
        for (pred, position), index in self._indexes.items():
            if pred == predicate and position < len(row):
                index.setdefault(row[position], []).append(row)
        return True

    def add_atom(self, atom: Atom) -> bool:
        return self.add(atom.predicate, atom.ground_tuple())

    def rows(self, predicate: str) -> set[Row]:
        return self._facts.get(predicate, set())

    def contains(self, predicate: str, row: Row) -> bool:
        return row in self._facts.get(predicate, ())

    def predicates(self) -> list[str]:
        return sorted(self._facts)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._facts.values())

    def copy(self) -> "Database":
        out = Database()
        for predicate, rows in self._facts.items():
            out._facts[predicate] = set(rows)
        return out

    def merge(self, other: "Database") -> None:
        for predicate in other._facts:
            for row in other._facts[predicate]:
                self.add(predicate, row)

    # ------------------------------------------------------------------
    def _index(self, predicate: str, position: int) -> dict[object, list[Row]]:
        key = (predicate, position)
        index = self._indexes.get(key)
        if index is None:
            index = {}
            for row in self._facts.get(predicate, ()):
                if position < len(row):
                    index.setdefault(row[position], []).append(row)
            self._indexes[key] = index
        return index

    def candidates(self, atom: Atom, subst: Substitution) -> Iterable[Row]:
        """Rows that could match ``atom`` under ``subst``.

        Probes the hash index on the first bound argument position; falls
        back to the full extension when every argument is free.
        """
        for position, term in enumerate(atom.args):
            term = walk(term, subst)
            if isinstance(term, Constant):
                return self._index(atom.predicate, position).get(term.value, ())
        return self._facts.get(atom.predicate, ())

    def as_atoms(self) -> Iterator[Atom]:
        for predicate in sorted(self._facts):
            for row in sorted(self._facts[predicate], key=repr):
                yield Atom(predicate, tuple(Constant(v) for v in row))
