"""The fact store used by the bottom-up engine.

Facts are rows (tuples of Python values) grouped per predicate.  Two
index layers accelerate matching:

* lazy **composite hash indexes** over arbitrary position tuples -- the
  compiled join plans (:mod:`repro.datalog.plan`) request an index over
  exactly the positions their bound-argument masks cover, so a literal
  with ``k`` bound arguments probes one ``k``-column index instead of
  filtering a single-column bucket;
* **selectivity-aware probing** for the interpreted path --
  :meth:`Database.candidates` consults the bucket for *every* bound
  position and scans the smallest one, rather than blindly the first.

Every successful mutation bumps a monotone version counter; the memo
layers in :mod:`repro.cache` key cached views on it, so any insert
invalidates downstream caches without explicit wiring.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant
from repro.datalog.unify import Substitution, walk

Row = tuple[object, ...]

_EMPTY: tuple[Row, ...] = ()

#: index over ``positions``: maps a key tuple to the rows carrying it.
Index = dict[tuple, list[Row]]


class Database:
    """Mutable set of ground facts with composite per-position indexes."""

    __slots__ = ("_facts", "_indexes", "_version", "probe_count",
                 "candidate_calls", "__weakref__")

    #: registry name for the storage-backend seam (repro.datalog.storage).
    backend = "dict"
    #: batch-operator counters of the columnar backend; class-level zeros
    #: here so metrics readers can diff them uniformly on any backend.
    batch_probe_count = 0
    batch_build_count = 0
    batch_dedup_rows = 0

    def __init__(self) -> None:
        self._facts: dict[str, set[Row]] = {}
        # (predicate -> positions-tuple -> key-tuple -> rows)
        self._indexes: dict[str, dict[tuple[int, ...], Index]] = {}
        self._version = 0
        #: join-probe counter: total ``bucket()`` lookups (compiled plans
        #: and the interpreted path both land here).  Monotone; readers
        #: diff before/after an evaluation (see repro.obs.metrics).
        self.probe_count = 0
        #: total ``candidates()`` calls (the interpreted path's
        #: selectivity-aware probe selection).
        self.candidate_calls = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped on every successful insert."""
        return self._version

    # ------------------------------------------------------------------
    def add(self, predicate: str, row: Row) -> bool:
        """Insert a fact; returns True when it was new."""
        rows = self._facts.setdefault(predicate, set())
        if row in rows:
            return False
        rows.add(row)
        self._version += 1
        indexes = self._indexes.get(predicate)
        if indexes:
            arity = len(row)
            for positions, index in indexes.items():
                if all(p < arity for p in positions):
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(row)
        return True

    def add_atom(self, atom: Atom) -> bool:
        return self.add(atom.predicate, atom.ground_tuple())

    def add_facts(self, predicate: str, rows: Iterable[Row]) -> int:
        """Bulk-insert rows for one predicate; returns how many were new.

        The fast path for loaders (program facts, journal replay,
        generated workloads): the fresh rows are computed with one set
        difference, already-materialized indexes are extended in a single
        pass, and the version counter is bumped **once** -- so memo
        layers keyed on ``version`` revalidate once per bulk load instead
        of once per row.
        """
        mine = self._facts.setdefault(predicate, set())
        fresh = set(rows) - mine
        if not fresh:
            return 0
        mine |= fresh
        self._version += 1
        indexes = self._indexes.get(predicate)
        if indexes:
            for positions, index in indexes.items():
                for row in fresh:
                    if all(p < len(row) for p in positions):
                        key = tuple(row[p] for p in positions)
                        index.setdefault(key, []).append(row)
        return len(fresh)

    def rows(self, predicate: str) -> set[Row]:
        return self._facts.get(predicate, set())

    def contains(self, predicate: str, row: Row) -> bool:
        return row in self._facts.get(predicate, ())

    def predicates(self) -> list[str]:
        return sorted(self._facts)

    def __len__(self) -> int:
        return sum(len(rows) for rows in self._facts.values())

    def copy(self) -> "Database":
        """An independent copy that keeps the already-built indexes."""
        out = Database()
        for predicate, rows in self._facts.items():
            out._facts[predicate] = set(rows)
        for predicate, indexes in self._indexes.items():
            out._indexes[predicate] = {
                positions: {key: list(bucket) for key, bucket in index.items()}
                for positions, index in indexes.items()
            }
        out._version = self._version
        return out

    def merge(self, other: "Database") -> None:
        """Bulk-insert ``other``'s facts, maintaining indexes incrementally."""
        for predicate, rows in other._facts.items():
            self.add_facts(predicate, rows)

    # ------------------------------------------------------------------
    def index(self, predicate: str, positions: tuple[int, ...]) -> Index:
        """The (lazily built) composite index over ``positions``."""
        indexes = self._indexes.setdefault(predicate, {})
        index = indexes.get(positions)
        if index is None:
            index = {}
            for row in self._facts.get(predicate, ()):
                if all(p < len(row) for p in positions):
                    index.setdefault(tuple(row[p] for p in positions), []).append(row)
            indexes[positions] = index
        return index

    def bucket(self, predicate: str, positions: tuple[int, ...], key: tuple) -> Iterable[Row]:
        """Rows whose values at ``positions`` equal ``key`` (index probe)."""
        self.probe_count += 1
        return self.index(predicate, positions).get(key, _EMPTY)

    def candidates(self, atom: Atom, subst: Substitution) -> Iterable[Row]:
        """Rows that could match ``atom`` under ``subst``.

        Probes the hash index for *every* bound argument position and
        scans the smallest bucket (the most selective probe); falls back
        to the full extension when every argument is free.
        """
        self.candidate_calls += 1
        best: Iterable[Row] | None = None
        best_size: int | None = None
        for position, term in enumerate(atom.args):
            term = walk(term, subst)
            if isinstance(term, Constant):
                bucket = self.bucket(atom.predicate, (position,), (term.value,))
                size = len(bucket)  # type: ignore[arg-type]
                if best_size is None or size < best_size:
                    best, best_size = bucket, size
                if size == 0:
                    break
        if best is not None:
            return best
        return self._facts.get(atom.predicate, ())

    def as_atoms(self) -> Iterator[Atom]:
        for predicate in sorted(self._facts):
            for row in sorted(self._facts[predicate], key=repr):
                yield Atom(predicate, tuple(Constant(v) for v in row))
