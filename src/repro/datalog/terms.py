"""Terms of the Datalog language: constants and variables.

The reduction (Section 6) only ever produces flat terms -- the translation
``tau`` maps every MultiLog construct to atoms over constants and
variables -- so function symbols are not needed by the engine.  Constants
wrap arbitrary hashable Python values (strings, numbers, tuples), which
lets the MultiLog reducer reuse predicate names and security labels as
ordinary constants (the ``rel(p, k, a, v, c, l)`` encoding is
higher-order-ish: the predicate name ``p`` becomes a term).
"""

from __future__ import annotations

import itertools

_COUNTER = itertools.count()


class Variable:
    """A logic variable, identified by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("var", self.name))

    def __repr__(self) -> str:
        return self.name

    def renamed(self, suffix: str) -> "Variable":
        return Variable(f"{self.name}#{suffix}")


class Constant:
    """A ground term wrapping a hashable Python value."""

    __slots__ = ("value",)

    def __init__(self, value: object):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("const", self.value))

    def __repr__(self) -> str:
        return repr(self.value) if not isinstance(self.value, str) else self.value


Term = Variable | Constant


def fresh_variable(prefix: str = "V") -> Variable:
    """A variable guaranteed not to clash with user-written ones."""
    return Variable(f"_{prefix}{next(_COUNTER)}")


def is_ground(term: Term) -> bool:
    """True for constants."""
    return isinstance(term, Constant)


def make_term(value: object) -> Term:
    """Coerce a Python value into a term.

    Strings beginning with an upper-case letter or ``_`` become variables
    (the usual Datalog convention); everything else becomes a constant.
    Existing terms pass through unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)
