"""A from-scratch Datalog engine: the paper's CORAL back-end stand-in.

Pipeline: :mod:`terms` / :mod:`atoms` / :mod:`rules` define the language;
:mod:`stratify` checks negation; :mod:`engine` evaluates bottom-up (naive
and semi-naive); :mod:`topdown` evaluates on demand; :mod:`magic` rewrites
queries for tuple-level demand; :mod:`parse` provides a concrete syntax.
"""

from repro.datalog.atoms import BUILTIN_PREDICATES, Atom, Literal, atom, neg, pos
from repro.datalog.columnar import ColumnarDatabase
from repro.datalog.database import Database, Row
from repro.datalog.engine import (
    answer_rows,
    evaluate,
    evaluate_goal_rules,
    greedy_join_order,
    query,
    query_database,
    reorder_body,
)
from repro.datalog.magic import MagicProgram, magic_query, magic_transform
from repro.datalog.plan import BatchRule, CompiledRule, compile_batch_rule, compile_rule
from repro.datalog.parse import parse_atom, parse_program
from repro.datalog.rules import Program, Rule, SafetyViolation
from repro.datalog.storage import (
    BACKEND_ENV,
    BACKENDS,
    StorageBackend,
    make_database,
    resolve_backend,
)
from repro.datalog.stratify import dependencies, strata, stratify
from repro.datalog.terms import Constant, Term, Variable, fresh_variable, make_term
from repro.datalog.topdown import TopDownEngine
from repro.datalog.unify import (
    Substitution,
    apply_to_atom,
    apply_to_literal,
    match_atom,
    unify_atoms,
    unify_terms,
)

__all__ = [
    "Atom",
    "BACKEND_ENV",
    "BACKENDS",
    "BUILTIN_PREDICATES",
    "BatchRule",
    "ColumnarDatabase",
    "CompiledRule",
    "Constant",
    "Database",
    "Literal",
    "MagicProgram",
    "Program",
    "Row",
    "Rule",
    "SafetyViolation",
    "StorageBackend",
    "Substitution",
    "Term",
    "TopDownEngine",
    "Variable",
    "answer_rows",
    "apply_to_atom",
    "apply_to_literal",
    "atom",
    "compile_batch_rule",
    "compile_rule",
    "dependencies",
    "evaluate",
    "evaluate_goal_rules",
    "fresh_variable",
    "greedy_join_order",
    "magic_query",
    "magic_transform",
    "make_database",
    "make_term",
    "match_atom",
    "neg",
    "parse_atom",
    "parse_program",
    "pos",
    "query",
    "query_database",
    "reorder_body",
    "resolve_backend",
    "strata",
    "stratify",
    "unify_atoms",
    "unify_terms",
]
