"""Atoms and literals.

An :class:`Atom` is ``predicate(t1, ..., tn)``; a :class:`Literal` is an
atom with a polarity (negated literals implement stratified negation as
failure).  Comparison predicates (``=``, ``!=``, ``<``, ``<=``, ``>``,
``>=``) are recognized as built-ins and evaluated natively by the engine
rather than looked up in the fact store.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.datalog.terms import Constant, Term, Variable, make_term

BUILTIN_PREDICATES = frozenset({"=", "!=", "<", "<=", ">", ">="})


class Atom:
    """``predicate(args...)`` over constants and variables."""

    __slots__ = ("predicate", "args")

    def __init__(self, predicate: str, args: Iterable[object] = ()):
        self.predicate = predicate
        self.args: tuple[Term, ...] = tuple(make_term(a) for a in args)

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def is_builtin(self) -> bool:
        return self.predicate in BUILTIN_PREDICATES

    def is_ground(self) -> bool:
        return all(isinstance(a, Constant) for a in self.args)

    def variables(self) -> set[Variable]:
        return {a for a in self.args if isinstance(a, Variable)}

    def key(self) -> tuple[str, int]:
        """Predicate identity: name and arity."""
        return (self.predicate, len(self.args))

    def ground_tuple(self) -> tuple[object, ...]:
        """The fact-store row for a ground atom."""
        if not self.is_ground():
            raise ValueError(f"atom {self!r} is not ground")
        return tuple(a.value for a in self.args)  # type: ignore[union-attr]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return self.predicate == other.predicate and self.args == other.args

    def __hash__(self) -> int:
        return hash((self.predicate, self.args))

    def __repr__(self) -> str:
        if not self.args:
            return self.predicate
        inner = ", ".join(repr(a) for a in self.args)
        return f"{self.predicate}({inner})"


class Literal:
    """An atom with a polarity; ``~`` on an atom via :func:`neg`."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom: Atom, positive: bool = True):
        self.atom = atom
        self.positive = positive

    @property
    def predicate(self) -> str:
        return self.atom.predicate

    def variables(self) -> set[Variable]:
        return self.atom.variables()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return self.atom == other.atom and self.positive == other.positive

    def __hash__(self) -> int:
        return hash((self.atom, self.positive))

    def __repr__(self) -> str:
        return repr(self.atom) if self.positive else f"not {self.atom!r}"


def pos(predicate: str, *args: object) -> Literal:
    """A positive literal (convenience constructor)."""
    return Literal(Atom(predicate, args), positive=True)


def neg(predicate: str, *args: object) -> Literal:
    """A negated literal (negation as failure)."""
    return Literal(Atom(predicate, args), positive=False)


def atom(predicate: str, *args: object) -> Atom:
    """Bare atom constructor mirroring :func:`pos` / :func:`neg`."""
    return Atom(predicate, args)
