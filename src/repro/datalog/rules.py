"""Rules, programs and the safety (range-restriction) check.

A rule is ``head :- body`` with a single head atom and a conjunctive body
of positive, negative and built-in literals.  A program bundles rules and
ground facts.

Safety (the classical Datalog condition, which Figure 12's literal axioms
violate -- see DESIGN.md):

* every head variable occurs in a positive, non-built-in body literal;
* every variable of a negated literal occurs in a positive one;
* every variable of a built-in comparison occurs in a positive literal.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.datalog.atoms import Atom, Literal
from repro.datalog.terms import Variable
from repro.errors import UnsafeRuleError


@dataclass(frozen=True)
class SafetyViolation:
    """One range-restriction defect of one rule.

    ``kind`` is ``"head"`` (head variable unbound), ``"negated"`` or
    ``"built-in"`` (literal variable unbound); ``literal`` is ``None``
    for head violations.  :meth:`message` reproduces the historical
    single-error text of :meth:`Rule.check_safety`, so collecting callers
    and the raising engine path stay word-for-word consistent.
    """

    rule: "Rule"
    kind: str
    variables: tuple[str, ...]
    literal: Literal | None = None

    def message(self) -> str:
        if self.kind == "head":
            return (
                f"head variable(s) {list(self.variables)} of rule "
                f"{self.rule!r} do not occur in a positive body literal"
            )
        return (
            f"variable(s) {list(self.variables)} of {self.kind} literal "
            f"{self.literal!r} in rule {self.rule!r} do not occur in a positive literal"
        )


class Rule:
    """``head :- body`` (facts are rules with an empty body)."""

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: Iterable[Literal] = ()):
        self.head = head
        self.body: tuple[Literal, ...] = tuple(body)

    @property
    def is_fact(self) -> bool:
        return not self.body

    def variables(self) -> set[Variable]:
        out = self.head.variables()
        for literal in self.body:
            out |= literal.variables()
        return out

    def positive_body(self) -> list[Literal]:
        return [l for l in self.body if l.positive and not l.atom.is_builtin]

    def negative_body(self) -> list[Literal]:
        return [l for l in self.body if not l.positive]

    def safety_violations(self) -> list[SafetyViolation]:
        """*All* range-restriction defects of this rule (empty when safe).

        Unlike :meth:`check_safety` this never raises: the static
        analyzer (:mod:`repro.analysis`) uses it to report every
        offender in a program up front instead of one per run.
        """
        bound: set[Variable] = set()
        for literal in self.positive_body():
            bound |= literal.variables()
        violations: list[SafetyViolation] = []
        unbound_head = self.head.variables() - bound
        if unbound_head:
            violations.append(SafetyViolation(
                self, "head", tuple(sorted(v.name for v in unbound_head))))
        for literal in self.body:
            if literal.positive and not literal.atom.is_builtin:
                continue
            unbound = literal.variables() - bound
            if unbound:
                kind = "negated" if not literal.positive else "built-in"
                violations.append(SafetyViolation(
                    self, kind, tuple(sorted(v.name for v in unbound)), literal))
        return violations

    def check_safety(self) -> None:
        """Raise :class:`UnsafeRuleError` when the rule is not range-restricted.

        The engine's fail-fast path: raises on the *first* violation.
        Use :meth:`safety_violations` to collect all of them.
        """
        violations = self.safety_violations()
        if violations:
            raise UnsafeRuleError(violations[0].message())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rule):
            return NotImplemented
        return self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        body = ", ".join(repr(l) for l in self.body)
        return f"{self.head!r} :- {body}."


class Program:
    """A set of rules plus extensional facts."""

    def __init__(self, rules: Iterable[Rule] = (), facts: Iterable[Atom] = ()):
        self.rules: list[Rule] = []
        self.facts: list[Atom] = []
        for rule in rules:
            self.add_rule(rule)
        for fact in facts:
            self.add_fact(fact)

    def add_rule(self, rule: Rule) -> None:
        if rule.is_fact and rule.head.is_ground():
            self.facts.append(rule.head)
        else:
            self.rules.append(rule)

    def add_fact(self, fact: Atom) -> None:
        if not fact.is_ground():
            raise UnsafeRuleError(f"fact {fact!r} is not ground")
        self.facts.append(fact)

    def extend(self, other: "Program") -> "Program":
        """A new program containing both rule/fact sets."""
        return Program(self.rules + other.rules, self.facts + other.facts)

    def safety_violations(self) -> list[SafetyViolation]:
        """Every rule's range-restriction defects, collected program-wide.

        (Asserted built-in facts are a separate defect class; the raising
        :meth:`check_safety` still rejects them.)
        """
        violations: list[SafetyViolation] = []
        for rule in self.rules:
            violations.extend(rule.safety_violations())
        return violations

    def check_safety(self) -> None:
        for rule in self.rules:
            rule.check_safety()
        for fact in self.facts:
            if fact.is_builtin:
                raise UnsafeRuleError(f"built-in predicate {fact.predicate!r} cannot be asserted")

    def predicates(self) -> set[str]:
        preds = {fact.predicate for fact in self.facts}
        for rule in self.rules:
            preds.add(rule.head.predicate)
            preds.update(l.predicate for l in rule.body if not l.atom.is_builtin)
        return preds

    def idb_predicates(self) -> set[str]:
        """Predicates defined by at least one proper rule."""
        return {rule.head.predicate for rule in self.rules}

    def rules_for(self, predicate: str) -> list[Rule]:
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def __len__(self) -> int:
        return len(self.rules) + len(self.facts)

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules, {len(self.facts)} facts)"

    def pretty(self) -> str:
        """Human-readable listing, facts first."""
        lines = [f"{fact!r}." for fact in self.facts]
        lines += [repr(rule) for rule in self.rules]
        return "\n".join(lines)
