"""Compiled join plans for the bottom-up engine.

The interpreted engine re-walks ``Literal`` objects for every candidate
row, copying a substitution dict per binding.  A :class:`CompiledRule`
does that analysis exactly once: the rule body (already reordered by
:func:`repro.datalog.engine.reorder_body` /
:func:`~repro.datalog.engine.greedy_join_order`) is translated into a
nested-loop Python function over raw fact rows, with

* one local variable slot per rule variable (no substitution dicts),
* a composite index probe per literal covering *all* statically bound
  argument positions (the literal's bound mask -- constants plus
  variables bound by earlier literals),
* built-in comparisons and negated literals inlined as guards, and
* **delta-specialized variants** for semi-naive evaluation: one extra
  function per recursive body literal, identical except that that
  literal scans the delta instead of the full database.

Bound-ness is static here because the engine only ever *matches*: once a
positive literal is placed, every one of its variables is ground for the
rest of the body, so the probe mask of each literal is known at compile
time.
"""

from __future__ import annotations

import os

from repro.datalog.atoms import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import DatalogError, PlanVerificationError

#: Static plan verification (repro.analysis.planverify) runs on every
#: generated plan before its ``exec`` unless disabled.  The check is
#: memoized on the generated source text, so steady-state compilation
#: pays one verification per distinct plan shape.
_VERIFY_PLANS = os.environ.get("MULTILOG_VERIFY_PLANS", "1") not in ("0", "false", "")
_VERIFIED_SOURCES: set[str] = set()


def set_plan_verification(enabled: bool) -> bool:
    """Toggle pre-exec plan verification; returns the previous setting."""
    global _VERIFY_PLANS
    previous = _VERIFY_PLANS
    _VERIFY_PLANS = bool(enabled)
    return previous


def plan_verification_enabled() -> bool:
    return _VERIFY_PLANS


def _verify_before_exec(rule: Rule, source: str, access_paths, kind: str,
                        namespace, delta_position: int | None) -> None:
    """Raise :class:`PlanVerificationError` when the plan is unsound.

    Imported lazily to keep ``repro.datalog`` free of an analysis-layer
    dependency at import time; memoized on ``source`` because identical
    rules re-compile on every evaluation of a reduced program.
    """
    if not _VERIFY_PLANS or source in _VERIFIED_SOURCES:
        return
    from repro.analysis.planverify import verify_plan_source

    report = verify_plan_source(rule, source, access_paths, kind,
                                namespace=namespace,
                                delta_position=delta_position)
    if not report.ok:
        first = report.errors[0]
        raise PlanVerificationError(
            f"refusing to exec an unsound {kind} plan for rule {rule!r}: "
            f"{first.code}: {first.message}",
            report=report)
    _VERIFIED_SOURCES.add(source)


def _lt(a, b):
    try:
        return a < b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


def _le(a, b):
    try:
        return a <= b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


def _gt(a, b):
    try:
        return a > b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


def _ge(a, b):
    try:
        return a >= b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


#: generated-code failure condition per built-in ({a}/{b} are arg exprs);
#: the emitter skips the current candidate when the condition holds.
_BUILTIN_GUARDS = {
    "=": "{a} != {b}",
    "!=": "{a} == {b}",
    "<": "not _lt({a}, {b})",
    "<=": "not _le({a}, {b})",
    ">": "not _gt({a}, {b})",
    ">=": "not _ge({a}, {b})",
}

#: batch-filter keep condition per order built-in ({a}/{b} are *decoded*
#: value expressions -- interned codes are not value-ordered).
_BATCH_ORDER_KEEPS = {
    "<": "_lt({a}, {b})",
    "<=": "_le({a}, {b})",
    ">": "_gt({a}, {b})",
    ">=": "_ge({a}, {b})",
}


class CompiledRule:
    """One rule compiled to closures; see :func:`compile_rule`."""

    __slots__ = ("rule", "head_predicate", "fire", "delta_variants", "source",
                 "access_paths")

    def __init__(self, rule: Rule, head_predicate: str, fire, delta_variants,
                 source: str, access_paths: tuple[dict, ...] = ()):
        self.rule = rule
        self.head_predicate = head_predicate
        #: ``fire(db) -> list[Row]`` -- all head rows derivable now.
        self.fire = fire
        #: ``(literal_predicate, fire(db, delta))`` per recursive literal.
        self.delta_variants = delta_variants
        self.source = source
        #: one dict per body literal, in execution order, describing its
        #: access path (index probe / full scan / guard / anti-join) --
        #: the data behind ``repro.obs.explain_rule``.
        self.access_paths = access_paths


class _Emitter:
    """Generates the nested-loop source for one rule variant."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.namespace: dict[str, object] = {
            "_lt": _lt, "_le": _le, "_gt": _gt, "_ge": _ge,
        }
        self._locals: dict[Variable, str] = {}
        self._consts = 0
        self.access_paths: list[dict] = []

    def _const(self, value: object) -> str:
        name = f"C{self._consts}"
        self._consts += 1
        self.namespace[name] = value
        return name

    def _local(self, var: Variable) -> str:
        name = self._locals.get(var)
        if name is None:
            name = f"v{len(self._locals)}"
            self._locals[var] = name
        return name

    def _bound_expr(self, term, bound: set[Variable], context: str) -> str:
        """Expression for a term that must already be ground."""
        if isinstance(term, Constant):
            return self._const(term.value)
        if term in bound:
            return self._locals[term]
        raise DatalogError(
            f"variable {term!r} of {context} in rule {self.rule!r} is not bound "
            "at evaluation time"
        )

    def emit(self, delta_position: int | None) -> str:
        lines = [
            "def _fire(db, delta=None):",
            "    _out = []",
            "    _append = _out.append",
            "    _contains = db.contains",
        ]
        indent = "    "
        depth = 0  # enclosing row loops; guards at depth 0 return instead
        skip = lambda: "continue" if depth else "return _out"  # noqa: E731
        bound: set[Variable] = set()
        for index, literal in enumerate(self.rule.body):
            atom = literal.atom
            if atom.is_builtin:
                if len(atom.args) != 2:
                    raise DatalogError(f"built-in {atom.predicate!r} takes two arguments")
                a = self._bound_expr(atom.args[0], bound, f"built-in {atom!r}")
                b = self._bound_expr(atom.args[1], bound, f"built-in {atom!r}")
                condition = _BUILTIN_GUARDS[atom.predicate].format(a=a, b=b)
                lines.append(indent + f"if {condition}: {skip()}")
                self.access_paths.append({"literal": repr(literal), "access": "guard"})
                continue
            if not literal.positive:
                args = ", ".join(
                    self._bound_expr(t, bound, f"negated literal {literal!r}")
                    for t in atom.args
                )
                row = f"({args},)" if atom.args else "()"
                lines.append(indent + f"if _contains({atom.predicate!r}, {row}): {skip()}")
                self.access_paths.append({"literal": repr(literal), "access": "anti-join"})
                continue
            source = "delta" if index == delta_position else "db"
            probe: list[tuple[int, str]] = []
            writes: list[tuple[int, str]] = []
            checks: list[tuple[int, str]] = []
            seen_here: set[Variable] = set()
            for position, term in enumerate(atom.args):
                if isinstance(term, Constant):
                    probe.append((position, self._const(term.value)))
                elif term in bound:
                    probe.append((position, self._locals[term]))
                elif term in seen_here:
                    checks.append((position, self._locals[term]))
                else:
                    seen_here.add(term)
                    writes.append((position, self._local(term)))
            row_var = f"r{index}"
            if probe:
                positions = self._const(tuple(p for p, _ in probe))
                key = ", ".join(expr for _, expr in probe)
                lines.append(
                    indent + f"for {row_var} in {source}.bucket("
                    f"{atom.predicate!r}, {positions}, ({key},)):"
                )
                self.access_paths.append({
                    "literal": repr(literal), "access": "index-probe",
                    "positions": tuple(p for p, _ in probe), "source": source,
                })
            else:
                lines.append(indent + f"for {row_var} in {source}.rows({atom.predicate!r}):")
                self.access_paths.append({
                    "literal": repr(literal), "access": "full-scan", "source": source,
                })
            indent += "    "
            depth += 1
            lines.append(indent + f"if len({row_var}) != {len(atom.args)}: continue")
            for position, name in writes:
                lines.append(indent + f"{name} = {row_var}[{position}]")
            for position, name in checks:
                lines.append(indent + f"if {row_var}[{position}] != {name}: continue")
            bound |= seen_here
        head = self.rule.head
        head_args = ", ".join(
            self._bound_expr(t, bound, f"head {head!r}") for t in head.args
        )
        head_row = f"({head_args},)" if head.args else "()"
        lines.append(indent + f"_append({head_row})")
        lines.append("    return _out")
        return "\n".join(lines)

    def compile(self, delta_position: int | None):
        source = self.emit(delta_position)
        _verify_before_exec(self.rule, source, tuple(self.access_paths),
                            "row", self.namespace, delta_position)
        namespace = dict(self.namespace)
        exec(compile(source, f"<join-plan {self.rule.head.predicate}>", "exec"), namespace)
        return namespace["_fire"], source


class BatchRule:
    """One rule compiled to a batch pipeline; see :func:`compile_batch_rule`."""

    __slots__ = ("rule", "head_predicate", "head_arity", "fire",
                 "delta_variants", "source", "access_paths")

    def __init__(self, rule: Rule, head_predicate: str, head_arity: int, fire,
                 delta_variants, source: str, access_paths: tuple[dict, ...] = ()):
        self.rule = rule
        self.head_predicate = head_predicate
        self.head_arity = head_arity
        #: ``fire(db)`` -- deduplicated coded head rows (list or set).
        self.fire = fire
        #: ``(predicate, arity, fire(db, delta_rows))`` per recursive literal.
        self.delta_variants = delta_variants
        self.source = source
        self.access_paths = access_paths


class _BatchEmitter:
    """Generates the batch-pipeline source for one rule variant.

    Where :class:`_Emitter` nests row loops, this emits a linear pipeline
    over ``batch`` -- a list of coded tuples, one slot per bound variable
    in binding order.  Each positive literal becomes one hash-join
    comprehension probing the whole batch against a build-side table from
    :meth:`~repro.datalog.columnar.ColumnarDatabase.batch_index`; guards
    and negated literals become whole-batch filters on codes.  Equality
    built-ins compare codes directly (value equality *is* code equality
    under the shared intern table; a never-stored constant probes to the
    ``-1`` sentinel, which no code equals), order built-ins decode
    through ``db.values_list``, and constant-vs-constant guards compare
    the raw values (two absent constants both probe to ``-1`` and must
    not be conflated).
    """

    def __init__(self, rule: Rule):
        self.rule = rule
        self.namespace: dict[str, object] = {
            "_lt": _lt, "_le": _le, "_gt": _gt, "_ge": _ge,
        }
        self._slots: dict[Variable, int] = {}
        self._counter = 0
        self._uses: set[str] = set()
        self.access_paths: list[dict] = []

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _const(self, value: object) -> str:
        name = self._name("C")
        self.namespace[name] = value
        return name

    def emit(self, delta_position: int | None) -> str:
        rule = self.rule
        ops: list[str] = []
        started = False  # whether ``batch`` exists yet
        #: set when the latest op is a ``t + m`` join: (probe source,
        #: probe key, slot width before the join, len(ops) afterwards).
        #: The head fuses into that join when nothing follows it.
        fuse: tuple[str, str, int, int] | None = None

        def slot_expr(var: Variable) -> str:
            return f"t[{self._slots[var]}]"

        def probe_const(value: object) -> str:
            self._uses.add("_probe")
            name = self._name("K")
            ops.append(f"    {name} = _probe({self._const(value)})")
            return name

        for index, literal in enumerate(rule.body):
            fuse = None  # any later op invalidates a pending join fusion
            this_join: tuple[str, str, int, int, str | None] | None = None
            atom = literal.atom
            if atom.is_builtin:
                if len(atom.args) != 2:
                    raise DatalogError(f"built-in {atom.predicate!r} takes two arguments")
                op = atom.predicate
                left, right = atom.args
                for term in (left, right):
                    if isinstance(term, Variable) and term not in self._slots:
                        raise DatalogError(
                            f"variable {term!r} of built-in {atom!r} in rule "
                            f"{rule!r} is not bound at evaluation time")
                if isinstance(left, Constant) and isinstance(right, Constant):
                    a, b = self._const(left.value), self._const(right.value)
                    condition = _BUILTIN_GUARDS[op].format(a=a, b=b)
                    if started and op not in ("=", "!="):
                        # Order guards can raise on incomparable values;
                        # only evaluate when rows exist, matching the
                        # row-compiled plan where the guard sits inside
                        # the join loops.
                        ops.append("    if batch:")
                        ops.append(f"        if {condition}: return []")
                    else:
                        ops.append(f"    if {condition}: return []")
                elif op in ("=", "!="):
                    sides = [
                        probe_const(term.value) if isinstance(term, Constant)
                        else slot_expr(term)
                        for term in (left, right)
                    ]
                    comparator = "==" if op == "=" else "!="
                    ops.append(f"    batch = [t for t in batch "
                               f"if {sides[0]} {comparator} {sides[1]}]")
                else:
                    self._uses.add("_vals")
                    sides = [
                        self._const(term.value) if isinstance(term, Constant)
                        else f"_vals[{slot_expr(term)}]"
                        for term in (left, right)
                    ]
                    keep = _BATCH_ORDER_KEEPS[op].format(a=sides[0], b=sides[1])
                    ops.append(f"    batch = [t for t in batch if {keep}]")
                self.access_paths.append({"literal": repr(literal), "access": "guard"})
                continue
            if not literal.positive:
                exprs: list[str] = []
                all_const = True
                for term in atom.args:
                    if isinstance(term, Constant):
                        exprs.append(probe_const(term.value))
                    elif term in self._slots:
                        exprs.append(slot_expr(term))
                        all_const = False
                    else:
                        raise DatalogError(
                            f"variable {term!r} of negated literal {literal!r} in "
                            f"rule {rule!r} is not bound at evaluation time")
                self._uses.add("_cs")
                nset = self._name("N")
                ops.append(f"    {nset} = _cs({atom.predicate!r}, {len(atom.args)})")
                row = f"({', '.join(exprs)},)" if exprs else "()"
                if all_const:
                    ops.append(f"    if {row} in {nset}: return []")
                else:
                    ops.append(f"    batch = [t for t in batch if {row} not in {nset}]")
                self.access_paths.append({"literal": repr(literal), "access": "anti-join"})
                continue

            arity = len(atom.args)
            is_delta = index == delta_position
            source = "delta" if is_delta else "db"
            key_positions: list[int] = []
            key_exprs: list[str] = []
            keeps: list[int] = []
            new_vars: list[Variable] = []
            eq_pairs: list[tuple[int, int]] = []
            first_here: dict[Variable, int] = {}
            for position, term in enumerate(atom.args):
                if isinstance(term, Constant):
                    key_positions.append(position)
                    key_exprs.append(probe_const(term.value))
                elif term in self._slots:
                    key_positions.append(position)
                    key_exprs.append(slot_expr(term))
                elif term in first_here:
                    eq_pairs.append((first_here[term], position))
                else:
                    first_here[term] = position
                    keeps.append(position)
                    new_vars.append(term)
            identity = (not key_positions and not eq_pairs
                        and keeps == list(range(arity)))
            width = len(self._slots)
            path: dict = {"literal": repr(literal), "source": source}
            if len(key_exprs) == 1:
                probe_key = key_exprs[0]
            else:
                probe_key = "(" + "".join(e + ", " for e in key_exprs) + ")"
            keep_proj = "(" + "".join(f"_r[{p}], " for p in keeps) + ")"
            if not started:
                if is_delta:
                    if identity:
                        ops.append("    batch = delta")
                    else:
                        checks = [f"_r[{p}] == {e}"
                                  for p, e in zip(key_positions, key_exprs)]
                        checks += [f"_r[{a}] == _r[{b}]" for a, b in eq_pairs]
                        guard = f" if {' and '.join(checks)}" if checks else ""
                        ops.append(f"    batch = [{keep_proj} for _r in delta{guard}]")
                elif identity:
                    self._uses.add("_rows")
                    ops.append(f"    batch = _rows({atom.predicate!r}, {arity})")
                else:
                    self._uses.add("_bi")
                    table = self._name("G")
                    ops.append(
                        f"    {table} = _bi({atom.predicate!r}, {arity}, "
                        f"{tuple(key_positions)!r}, {tuple(keeps)!r}, "
                        f"{tuple(eq_pairs)!r})")
                    if key_positions:
                        ops.append("    db.batch_probe_count += 1")
                    ops.append(f"    batch = {table}.get({probe_key}, _ET)")
                started = True
            else:
                if is_delta:
                    # Build a hash table over the (small) frontier batch
                    # inline, then probe the whole accumulated batch.
                    build = self._name("D")
                    if len(key_positions) == 1:
                        key_build = f"_r[{key_positions[0]}]"
                    else:
                        key_build = ("(" + "".join(f"_r[{p}], "
                                                   for p in key_positions) + ")")
                    ops.append(f"    {build} = {{}}")
                    ops.append(f"    {build}_add = {build}.setdefault")
                    ops.append("    for _r in delta:")
                    for a, b in eq_pairs:
                        ops.append(f"        if _r[{a}] != _r[{b}]: continue")
                    ops.append(f"        {build}_add({key_build}, []).append({keep_proj})")
                    probe_source = build
                    bare_line = (f"        {build}_add({key_build}, [])"
                                 f".append(_r[{keeps[0]}])"
                                 if len(keeps) == 1 else None)
                else:
                    self._uses.add("_bi")
                    probe_source = self._name("G")
                    ops.append(
                        f"    {probe_source} = _bi({atom.predicate!r}, {arity}, "
                        f"{tuple(key_positions)!r}, {tuple(keeps)!r}, "
                        f"{tuple(eq_pairs)!r})")
                    bare_line = (ops[-1][:-1] + ", bare_keep=True)"
                                 if len(keeps) == 1 else None)
                build_index = len(ops) - 1
                ops.append("    db.batch_probe_count += 1")
                ops.append(f"    batch = [t + m for t in batch "
                           f"for m in {probe_source}.get({probe_key}, _ET)]")
                this_join = (probe_source, probe_key, width,
                             build_index, bare_line)
            path["access"] = "batch-probe" if key_positions else "batch-scan"
            if key_positions:
                path["positions"] = tuple(key_positions)
            self.access_paths.append(path)
            for offset, var in enumerate(new_vars):
                self._slots[var] = width + offset
            ops.append("    if not batch: return []")
            if this_join is not None:
                fuse = (*this_join, len(ops))

        head = rule.head
        head_parts: list[tuple[str, object]] = []  # ("expr", name) | ("slot", i)
        for term in head.args:
            if isinstance(term, Constant):
                self._uses.add("_encode")
                code = self._name("H")
                ops.append(f"    {code} = _encode({self._const(term.value)})")
                head_parts.append(("expr", code))
            elif term in self._slots:
                head_parts.append(("slot", self._slots[term]))
            else:
                raise DatalogError(
                    f"variable {term!r} of head {head!r} in rule {rule!r} is "
                    "not bound at evaluation time")

        def head_row(join_width: int | None = None, bare: bool = False) -> str:
            exprs = []
            for kind, value in head_parts:
                if kind == "expr":
                    exprs.append(value)
                elif join_width is not None and value >= join_width:
                    exprs.append("m" if bare else f"m[{value - join_width}]")
                else:
                    exprs.append(f"t[{value}]")
            return "(" + "".join(e + ", " for e in exprs) + ")"

        if not started:
            ops.append(f"    return [{head_row()}]")
        elif not head_parts:
            ops.append("    return [()] if batch else []")
        elif fuse is not None:
            # Fuse the final join with the head projection: one set
            # comprehension replaces join-materialize + project-dedup,
            # the two biggest costs of a vectorized round.  A
            # single-position keep side additionally switches its build
            # to bare codes, sparing the per-probe-row 1-tuple subscript.
            (probe_source, probe_key, join_width,
             build_index, bare_line, join_len) = fuse
            del ops[join_len - 2:join_len]  # the join + its emptiness guard
            if bare_line is not None:
                ops[build_index] = bare_line
            ops.append(f"    _get = {probe_source}.get")
            ops.append(f"    return {{{head_row(join_width, bare_line is not None)} "
                       f"for t in batch for m in _get({probe_key}, _ET)}}")
        else:
            ops.append(f"    return {{{head_row()} for t in batch}}")

        prologue = ["def _fire(db, delta=None):"]
        for helper, binding in (("_probe", "db.probe_code"),
                                ("_bi", "db.batch_index"),
                                ("_cs", "db.coded_set"),
                                ("_rows", "db.coded_rows"),
                                ("_encode", "db.encode_value"),
                                ("_vals", "db.values_list")):
            if helper in self._uses:
                prologue.append(f"    {helper} = {binding}")
        prologue.append("    _ET = ()")
        return "\n".join(prologue + ops)

    def compile(self, delta_position: int | None):
        source = self.emit(delta_position)
        _verify_before_exec(self.rule, source, tuple(self.access_paths),
                            "batch", self.namespace, delta_position)
        namespace = dict(self.namespace)
        exec(compile(source, f"<batch-plan {self.rule.head.predicate}>", "exec"),
             namespace)
        return namespace["_fire"], source


def _is_positive_relation(literal: Literal) -> bool:
    return literal.positive and not literal.atom.is_builtin


def compile_batch_rule(rule: Rule,
                       stratum_predicates: set[str] = frozenset()) -> BatchRule:
    """Compile ``rule`` into a batch pipeline for the columnar backend.

    Same contract as :func:`compile_rule`, lifted batch-at-a-time: the
    returned plan's ``fire(db)`` takes a
    :class:`~repro.datalog.columnar.ColumnarDatabase` and returns
    deduplicated **coded** head rows; each delta variant takes the
    round's frontier for one recursive literal as a coded-row batch.
    """
    emitter = _BatchEmitter(rule)
    fire, source = emitter.compile(None)
    variants = []
    for index, literal in enumerate(rule.body):
        if _is_positive_relation(literal) and literal.predicate in stratum_predicates:
            variant, _ = _BatchEmitter(rule).compile(index)
            variants.append((literal.predicate, len(literal.atom.args), variant))
    return BatchRule(rule, rule.head.predicate, len(rule.head.args), fire,
                     tuple(variants), source, tuple(emitter.access_paths))


def compile_rule(rule: Rule, stratum_predicates: set[str] = frozenset()) -> CompiledRule:
    """Compile ``rule`` (body already in evaluation order) into a plan.

    ``stratum_predicates`` selects the recursive literals that need
    delta-specialized variants for semi-naive refiring.
    """
    emitter = _Emitter(rule)
    fire, source = emitter.compile(None)
    variants = []
    for index, literal in enumerate(rule.body):
        if _is_positive_relation(literal) and literal.predicate in stratum_predicates:
            variant, _ = _Emitter(rule).compile(index)
            variants.append((literal.predicate, variant))
    return CompiledRule(rule, rule.head.predicate, fire, tuple(variants), source,
                        tuple(emitter.access_paths))
