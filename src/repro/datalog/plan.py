"""Compiled join plans for the bottom-up engine.

The interpreted engine re-walks ``Literal`` objects for every candidate
row, copying a substitution dict per binding.  A :class:`CompiledRule`
does that analysis exactly once: the rule body (already reordered by
:func:`repro.datalog.engine.reorder_body` /
:func:`~repro.datalog.engine.greedy_join_order`) is translated into a
nested-loop Python function over raw fact rows, with

* one local variable slot per rule variable (no substitution dicts),
* a composite index probe per literal covering *all* statically bound
  argument positions (the literal's bound mask -- constants plus
  variables bound by earlier literals),
* built-in comparisons and negated literals inlined as guards, and
* **delta-specialized variants** for semi-naive evaluation: one extra
  function per recursive body literal, identical except that that
  literal scans the delta instead of the full database.

Bound-ness is static here because the engine only ever *matches*: once a
positive literal is placed, every one of its variables is ground for the
rest of the body, so the probe mask of each literal is known at compile
time.
"""

from __future__ import annotations

from repro.datalog.atoms import Literal
from repro.datalog.rules import Rule
from repro.datalog.terms import Constant, Variable
from repro.errors import DatalogError


def _lt(a, b):
    try:
        return a < b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


def _le(a, b):
    try:
        return a <= b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


def _gt(a, b):
    try:
        return a > b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


def _ge(a, b):
    try:
        return a >= b
    except TypeError as exc:
        raise DatalogError(f"incomparable values in comparison: {exc}") from exc


#: generated-code failure condition per built-in ({a}/{b} are arg exprs);
#: the emitter skips the current candidate when the condition holds.
_BUILTIN_GUARDS = {
    "=": "{a} != {b}",
    "!=": "{a} == {b}",
    "<": "not _lt({a}, {b})",
    "<=": "not _le({a}, {b})",
    ">": "not _gt({a}, {b})",
    ">=": "not _ge({a}, {b})",
}


class CompiledRule:
    """One rule compiled to closures; see :func:`compile_rule`."""

    __slots__ = ("rule", "head_predicate", "fire", "delta_variants", "source",
                 "access_paths")

    def __init__(self, rule: Rule, head_predicate: str, fire, delta_variants,
                 source: str, access_paths: tuple[dict, ...] = ()):
        self.rule = rule
        self.head_predicate = head_predicate
        #: ``fire(db) -> list[Row]`` -- all head rows derivable now.
        self.fire = fire
        #: ``(literal_predicate, fire(db, delta))`` per recursive literal.
        self.delta_variants = delta_variants
        self.source = source
        #: one dict per body literal, in execution order, describing its
        #: access path (index probe / full scan / guard / anti-join) --
        #: the data behind ``repro.obs.explain_rule``.
        self.access_paths = access_paths


class _Emitter:
    """Generates the nested-loop source for one rule variant."""

    def __init__(self, rule: Rule):
        self.rule = rule
        self.namespace: dict[str, object] = {
            "_lt": _lt, "_le": _le, "_gt": _gt, "_ge": _ge,
        }
        self._locals: dict[Variable, str] = {}
        self._consts = 0
        self.access_paths: list[dict] = []

    def _const(self, value: object) -> str:
        name = f"C{self._consts}"
        self._consts += 1
        self.namespace[name] = value
        return name

    def _local(self, var: Variable) -> str:
        name = self._locals.get(var)
        if name is None:
            name = f"v{len(self._locals)}"
            self._locals[var] = name
        return name

    def _bound_expr(self, term, bound: set[Variable], context: str) -> str:
        """Expression for a term that must already be ground."""
        if isinstance(term, Constant):
            return self._const(term.value)
        if term in bound:
            return self._locals[term]
        raise DatalogError(
            f"variable {term!r} of {context} in rule {self.rule!r} is not bound "
            "at evaluation time"
        )

    def emit(self, delta_position: int | None) -> str:
        lines = [
            "def _fire(db, delta=None):",
            "    _out = []",
            "    _append = _out.append",
            "    _contains = db.contains",
        ]
        indent = "    "
        depth = 0  # enclosing row loops; guards at depth 0 return instead
        skip = lambda: "continue" if depth else "return _out"  # noqa: E731
        bound: set[Variable] = set()
        for index, literal in enumerate(self.rule.body):
            atom = literal.atom
            if atom.is_builtin:
                if len(atom.args) != 2:
                    raise DatalogError(f"built-in {atom.predicate!r} takes two arguments")
                a = self._bound_expr(atom.args[0], bound, f"built-in {atom!r}")
                b = self._bound_expr(atom.args[1], bound, f"built-in {atom!r}")
                condition = _BUILTIN_GUARDS[atom.predicate].format(a=a, b=b)
                lines.append(indent + f"if {condition}: {skip()}")
                self.access_paths.append({"literal": repr(literal), "access": "guard"})
                continue
            if not literal.positive:
                args = ", ".join(
                    self._bound_expr(t, bound, f"negated literal {literal!r}")
                    for t in atom.args
                )
                row = f"({args},)" if atom.args else "()"
                lines.append(indent + f"if _contains({atom.predicate!r}, {row}): {skip()}")
                self.access_paths.append({"literal": repr(literal), "access": "anti-join"})
                continue
            source = "delta" if index == delta_position else "db"
            probe: list[tuple[int, str]] = []
            writes: list[tuple[int, str]] = []
            checks: list[tuple[int, str]] = []
            seen_here: set[Variable] = set()
            for position, term in enumerate(atom.args):
                if isinstance(term, Constant):
                    probe.append((position, self._const(term.value)))
                elif term in bound:
                    probe.append((position, self._locals[term]))
                elif term in seen_here:
                    checks.append((position, self._locals[term]))
                else:
                    seen_here.add(term)
                    writes.append((position, self._local(term)))
            row_var = f"r{index}"
            if probe:
                positions = self._const(tuple(p for p, _ in probe))
                key = ", ".join(expr for _, expr in probe)
                lines.append(
                    indent + f"for {row_var} in {source}.bucket("
                    f"{atom.predicate!r}, {positions}, ({key},)):"
                )
                self.access_paths.append({
                    "literal": repr(literal), "access": "index-probe",
                    "positions": tuple(p for p, _ in probe), "source": source,
                })
            else:
                lines.append(indent + f"for {row_var} in {source}.rows({atom.predicate!r}):")
                self.access_paths.append({
                    "literal": repr(literal), "access": "full-scan", "source": source,
                })
            indent += "    "
            depth += 1
            lines.append(indent + f"if len({row_var}) != {len(atom.args)}: continue")
            for position, name in writes:
                lines.append(indent + f"{name} = {row_var}[{position}]")
            for position, name in checks:
                lines.append(indent + f"if {row_var}[{position}] != {name}: continue")
            bound |= seen_here
        head = self.rule.head
        head_args = ", ".join(
            self._bound_expr(t, bound, f"head {head!r}") for t in head.args
        )
        head_row = f"({head_args},)" if head.args else "()"
        lines.append(indent + f"_append({head_row})")
        lines.append("    return _out")
        return "\n".join(lines)

    def compile(self, delta_position: int | None):
        source = self.emit(delta_position)
        namespace = dict(self.namespace)
        exec(compile(source, f"<join-plan {self.rule.head.predicate}>", "exec"), namespace)
        return namespace["_fire"], source


def _is_positive_relation(literal: Literal) -> bool:
    return literal.positive and not literal.atom.is_builtin


def compile_rule(rule: Rule, stratum_predicates: set[str] = frozenset()) -> CompiledRule:
    """Compile ``rule`` (body already in evaluation order) into a plan.

    ``stratum_predicates`` selects the recursive literals that need
    delta-specialized variants for semi-naive refiring.
    """
    emitter = _Emitter(rule)
    fire, source = emitter.compile(None)
    variants = []
    for index, literal in enumerate(rule.body):
        if _is_positive_relation(literal) and literal.predicate in stratum_predicates:
            variant, _ = _Emitter(rule).compile(index)
            variants.append((literal.predicate, variant))
    return CompiledRule(rule, rule.head.predicate, fire, tuple(variants), source,
                        tuple(emitter.access_paths))
