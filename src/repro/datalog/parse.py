"""A small concrete syntax for Datalog programs.

Used by tests, examples and the Proposition 6.1 bench (classical Datalog
programs pushed through MultiLog).  Grammar::

    program  := clause*
    clause   := atom ( ":-" literal ("," literal)* )? "."
    literal  := ("not" | "\\+")? atom | term op term
    atom     := name ( "(" term ("," term)* ")" )?
    term     := name | Variable | number | quoted string
    op       := = | != | < | <= | > | >=

Names starting with an upper-case letter (or ``_``) are variables;
``%`` starts a comment running to end of line.
"""

from __future__ import annotations

import re

from repro.datalog.atoms import Atom, Literal
from repro.datalog.rules import Program, Rule
from repro.datalog.terms import Constant, Term, Variable
from repro.errors import DatalogError

_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|%[^\n]*)
  | (?P<implies>:-)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<punct>[(),.])
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<string>'[^']*'|"[^"]*")
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            raise DatalogError(f"unexpected character {text[position]!r} at offset {position}")
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise DatalogError("unexpected end of program text")
        self._index += 1
        return token

    def _expect(self, value: str) -> None:
        kind, text = self._next()
        if text != value:
            raise DatalogError(f"expected {value!r}, found {text!r}")

    def parse_program(self) -> Program:
        program = Program()
        while self._peek() is not None:
            program.add_rule(self.parse_clause())
        return program

    def parse_clause(self) -> Rule:
        head = self.parse_atom()
        body: list[Literal] = []
        kind, text = self._next()
        if text == ":-":
            body.append(self.parse_literal())
            while True:
                kind, text = self._next()
                if text == ".":
                    break
                if text != ",":
                    raise DatalogError(f"expected ',' or '.', found {text!r}")
                body.append(self.parse_literal())
        elif text != ".":
            raise DatalogError(f"expected ':-' or '.', found {text!r}")
        return Rule(head, tuple(body))

    def parse_literal(self) -> Literal:
        token = self._peek()
        if token is not None and token[1] in ("not", "\\+"):
            self._next()
            return Literal(self.parse_atom(), positive=False)
        # Could be an atom or an infix comparison.
        left = self.parse_term()
        token = self._peek()
        if token is not None and token[0] == "op":
            op = self._next()[1]
            right = self.parse_term()
            return Literal(Atom(op, (left, right)))
        if isinstance(left, Constant) and isinstance(left.value, str):
            return Literal(self._finish_atom(left.value))
        raise DatalogError(f"expected a literal, found bare term {left!r}")

    def parse_atom(self) -> Atom:
        kind, text = self._next()
        if kind != "name":
            raise DatalogError(f"expected a predicate name, found {text!r}")
        return self._finish_atom(text)

    def _finish_atom(self, name: str) -> Atom:
        token = self._peek()
        if token is None or token[1] != "(":
            return Atom(name, ())
        self._expect("(")
        args = [self.parse_term()]
        while True:
            kind, text = self._next()
            if text == ")":
                break
            if text != ",":
                raise DatalogError(f"expected ',' or ')', found {text!r}")
            args.append(self.parse_term())
        return Atom(name, tuple(args))

    def parse_term(self) -> Term:
        kind, text = self._next()
        if kind == "name":
            if text[0].isupper() or text[0] == "_":
                return Variable(text)
            return Constant(text)
        if kind == "number":
            value = float(text) if "." in text else int(text)
            return Constant(value)
        if kind == "string":
            return Constant(text[1:-1])
        raise DatalogError(f"expected a term, found {text!r}")


def parse_program(text: str) -> Program:
    """Parse program text into a :class:`~repro.datalog.rules.Program`."""
    return _Parser(_tokenize(text)).parse_program()


def parse_atom(text: str) -> Atom:
    """Parse a single (query) atom like ``ancestor(adam, X)``."""
    parser = _Parser(_tokenize(text.rstrip(". ")))
    atom = parser.parse_atom()
    if parser._peek() is not None:
        raise DatalogError(f"trailing tokens after atom in {text!r}")
    return atom
