"""MultiLog: belief reasoning in MLS deductive databases.

A full reproduction of Hasan M. Jamil, *Belief Reasoning in MLS Deductive
Databases* (SIGMOD 1999): the MultiLog language with its operational and
reduction semantics, the parametric belief function beta, the MLS
relational substrate the paper's figures are computed from, a from-scratch
Datalog engine standing in for CORAL, and an extended SQL front-end with
``BELIEVED <mode>``.

Quick start::

    from repro.multilog import MultiLogSession

    session = MultiLogSession('''
        level(u). level(s). order(u, s).
        u[acct(alice : balance -u-> 100)].
        s[acct(alice : balance -s-> 900)].
    ''', clearance="s")
    session.ask("s[acct(alice : balance -C-> B)] << cau")
    # -> [{'B': 900, 'C': 's'}]

Subpackages: :mod:`repro.lattice`, :mod:`repro.mls`, :mod:`repro.belief`,
:mod:`repro.datalog`, :mod:`repro.multilog`, :mod:`repro.msql`,
:mod:`repro.workloads`, :mod:`repro.reporting`.
"""

from repro.errors import (
    AccessDeniedError,
    AdmissibilityError,
    BeliefRecursionError,
    BudgetExceededError,
    ConsistencyError,
    CycleError,
    DataCorruptionError,
    DatalogError,
    FaultInjectedError,
    IntegrityError,
    JournalError,
    LatticeError,
    MLSError,
    MultiLogError,
    MultiLogSyntaxError,
    NotALatticeError,
    RecoveryError,
    ReproError,
    ResilienceError,
    SchemaError,
    StrategyFailureError,
    StratificationError,
    TransientFaultError,
    UnknownLevelError,
    UnknownModeError,
    UnsafeRuleError,
    is_transient,
)

__version__ = "1.0.0"

__all__ = [
    "AccessDeniedError",
    "AdmissibilityError",
    "BeliefRecursionError",
    "BudgetExceededError",
    "ConsistencyError",
    "CycleError",
    "DataCorruptionError",
    "DatalogError",
    "FaultInjectedError",
    "IntegrityError",
    "JournalError",
    "LatticeError",
    "MLSError",
    "MultiLogError",
    "MultiLogSyntaxError",
    "NotALatticeError",
    "RecoveryError",
    "ReproError",
    "ResilienceError",
    "SchemaError",
    "StrategyFailureError",
    "StratificationError",
    "TransientFaultError",
    "UnknownLevelError",
    "UnknownModeError",
    "UnsafeRuleError",
    "__version__",
    "is_transient",
]
