"""Resilience for the evaluation stack: chaos in, graceful degradation out.

PR 2 made evaluation observable and bounded; this package makes it
survivable.  Three cooperating pieces (docs/RESILIENCE.md has the full
model):

* **Fault injection** (:mod:`~repro.resilience.faults`) -- a seedable
  :class:`FaultPlan` registered on the ambient
  :class:`~repro.obs.ObsContext` (or armed on a session) that raises,
  delays or corrupt-and-detects at the engines' named span points
  (``evaluate``, ``stratum[i]``, ``rule-fire``, ``beta``,
  ``tau-translate``, ...), so the guarantees below are *tested* by the
  chaos differential suite, not asserted.
* **Degradation ladder** (:mod:`~repro.resilience.executor`) -- a
  :class:`ResilientExecutor` wrapping ``evaluate`` and
  ``MultiLogSession.ask``: capped-exponential retry for transient
  faults, strategy fallback ``compiled -> seminaive -> naive`` for
  strategy-specific failures, and, when the caller opts in, a
  :class:`PartialResult` instead of a raise on budget exhaustion.
* **Crash-safe journaling** (:mod:`~repro.resilience.journal`) -- a
  write-ahead :class:`SessionJournal` for ``assert_clause`` (validate,
  append-and-fsync, apply; atomic snapshot compaction), now with
  per-record CRC-32 checksums + sequence numbers, torn/corrupt-tail
  quarantine into a sidecar file, and a structured
  :class:`RecoveryReport` from ``MultiLogSession.recover(path)``, which
  replays the journal and re-checks Definitions 5.3/5.4 on the
  recovered database.  :class:`CheckpointPolicy`
  (:mod:`~repro.resilience.checkpoint`) decides when the serving
  layer's background checkpointer compacts.

The error taxonomy lives in :mod:`repro.errors`:
:func:`~repro.errors.is_transient` separates retryable faults
(:class:`~repro.errors.TransientFaultError`,
:class:`~repro.errors.DataCorruptionError`) from permanent ones, and
:class:`~repro.errors.StrategyFailureError` routes to the ladder.
"""

from repro.resilience.executor import (
    LADDER,
    Outcome,
    PartialResult,
    ResilientExecutor,
    RetryPolicy,
)
from repro.resilience.faults import (
    SPAN_POINTS,
    FaultPlan,
    FaultSpec,
    InjectingRecorder,
)
from repro.resilience.checkpoint import CheckpointPolicy
from repro.resilience.journal import (
    JOURNAL_FAULT_POINTS,
    QuarantinedRecord,
    RecoveryReport,
    SessionJournal,
    database_source,
)

__all__ = [
    "CheckpointPolicy",
    "FaultPlan",
    "FaultSpec",
    "InjectingRecorder",
    "JOURNAL_FAULT_POINTS",
    "LADDER",
    "Outcome",
    "PartialResult",
    "QuarantinedRecord",
    "RecoveryReport",
    "ResilientExecutor",
    "RetryPolicy",
    "SPAN_POINTS",
    "SessionJournal",
    "database_source",
]
