"""Checkpoint cadence: when is a journal worth compacting?

A :class:`CheckpointPolicy` is immutable configuration the serving
layer's background checkpointer evaluates against
:meth:`~repro.resilience.journal.SessionJournal.checkpoint_stats` --
"compact once this many clauses or this many bytes have accumulated
since the last snapshot".  Compaction itself stays in the journal
(write-temp -> fsync -> atomic rename -> parent-dir fsync); the policy
only decides *when*, so recovery time is bounded by the thresholds
instead of growing with total write volume.

Both thresholds are disjunctive: either one being crossed makes the
checkpoint due.  ``None`` disables a threshold; a policy with both
disabled is never due (checkpointing off).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """Thresholds that make a journal compaction due."""

    #: Compact after this many clause records since the last snapshot.
    max_records: int | None = 1000
    #: Compact once the journal file exceeds this many bytes.
    max_bytes: int | None = 4 * 1024 * 1024

    @property
    def enabled(self) -> bool:
        return self.max_records is not None or self.max_bytes is not None

    def due(self, records: int, size_bytes: int) -> bool:
        """Is a checkpoint due at this accumulation?"""
        if self.max_records is not None and records >= self.max_records:
            return True
        if self.max_bytes is not None and size_bytes >= self.max_bytes:
            return True
        return False

    def describe(self) -> str:
        if not self.enabled:
            return "checkpointing disabled"
        parts = []
        if self.max_records is not None:
            parts.append(f"{self.max_records} record(s)")
        if self.max_bytes is not None:
            parts.append(f"{self.max_bytes} byte(s)")
        return "checkpoint after " + " or ".join(parts)
