"""Deterministic fault injection at named span points.

The engines already announce every interesting phase boundary to the
ambient recorder -- ``evaluate``, ``stratify``, ``stratum[i]``,
``rule-fire``, ``round[i]``, ``beta``, ``tau-translate``, ``query``,
``fixpoint`` -- so the span points double as fault points.  A
:class:`FaultPlan` holds a list of :class:`FaultSpec` triggers; when the
plan is registered on an :class:`~repro.obs.ObsContext` (the ``faults``
slot), the context wraps its recorder in an :class:`InjectingRecorder`
whose ``span(name)`` first offers the plan a chance to fire.  This works
whether tracing is on or off: the null recorder's span points still
fire, so chaos tests do not pay for span collection.

Determinism: with ``probability=1.0`` (the default) a spec fires on
exact hit counts (``after`` skips, ``times`` caps), so a chaos run is
reproducible by construction.  Probabilistic specs draw from the plan's
own ``random.Random(seed)``, never the global RNG, so a seeded plan
replays identically.

Three actions:

* ``raise`` -- raise :class:`~repro.errors.TransientFaultError`
  (``error="transient"``), :class:`~repro.errors.FaultInjectedError`
  (``error="permanent"``) or :class:`~repro.errors.StrategyFailureError`
  (``error="strategy"``);
* ``delay`` -- sleep ``delay_s`` (drives wall-clock budgets into
  timeouts without flaky real workloads);
* ``corrupt`` -- corrupt-and-detect: raise
  :class:`~repro.errors.DataCorruptionError`, modelling an intermediate
  whose checksum verification failed.  Detected corruption is transient:
  recomputing from clean inputs may succeed.
* ``enospc`` -- raise ``OSError(ENOSPC)``, modelling a full disk.  Only
  meaningful at the journal's disk fault points
  (:data:`~repro.resilience.journal.JOURNAL_FAULT_POINTS`), where the
  journal wraps it into a :class:`~repro.errors.JournalError`.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.errors import (
    DataCorruptionError,
    FaultInjectedError,
    StrategyFailureError,
    TransientFaultError,
)

#: The span points the engines announce (documented for :func:`FaultPlan.arm`
#: callers and the ``:faults`` shell command; globs like ``stratum[*]`` match).
SPAN_POINTS = (
    "evaluate", "stratify", "stratum[*]", "round[*]", "rule-fire",
    "answer-rules", "beta", "tau-translate", "query", "parse", "fixpoint",
    "analyze",
)

_ACTIONS = ("raise", "delay", "corrupt", "enospc")
_ERRORS = ("transient", "permanent", "strategy")


def _match_point(name: str, pattern: str) -> bool:
    """Span-point matching: exact, ``prefix[*]`` families, or fnmatch.

    Span names use literal brackets (``stratum[0]``, ``round[3]``) that
    ``fnmatch`` would read as character classes, so the indexed-family
    form ``prefix[*]`` is handled specially: it matches ``prefix[<any>]``.
    """
    if pattern == name or pattern == "*":
        return True
    if pattern.endswith("[*]"):
        return (name.startswith(pattern[:-2]) and name.endswith("]"))
    return fnmatchcase(name, pattern)


@dataclass
class FaultSpec:
    """One trigger: *at this span point, do this, so many times*.

    ``point`` is an ``fnmatch``-style pattern over span names
    (``"stratum[*]"`` hits every stratum).  The spec fires on hits
    ``after+1 .. after+times`` of a matching span (``times=None`` means
    forever); ``probability < 1`` additionally gates each firing on the
    owning plan's seeded RNG.
    """

    point: str
    action: str = "raise"
    error: str = "transient"
    delay_s: float = 0.0
    after: int = 0
    times: int | None = 1
    probability: float = 1.0
    #: bookkeeping, owned by the plan
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; use one of {_ACTIONS}")
        if self.error not in _ERRORS:
            raise ValueError(f"unknown fault error kind {self.error!r}; use one of {_ERRORS}")

    def matches(self, name: str) -> bool:
        return _match_point(name, self.point)

    def describe(self) -> str:
        out = f"{self.action} at {self.point}"
        if self.action == "raise":
            out += f" ({self.error})"
        if self.action == "delay":
            out += f" ({self.delay_s}s)"
        if self.after:
            out += f" after {self.after}"
        out += " forever" if self.times is None else f" x{self.times}"
        if self.probability < 1.0:
            out += f" p={self.probability}"
        return out + f" [hits={self.hits} fired={self.fired}]"


class FaultPlan:
    """A seedable set of fault triggers, armed on an :class:`~repro.obs.
    ObsContext` (ambient evaluation) or a ``MultiLogSession`` (asks).

    >>> from repro.resilience import FaultPlan
    >>> plan = FaultPlan(seed=0)
    >>> _ = plan.arm("stratum[*]", action="raise", error="transient")
    >>> # with use(ObsContext(faults=plan)): evaluate(...)  # raises once

    ``history`` records every firing as ``(span_name, action)`` so chaos
    tests can assert the fault actually landed where intended.
    """

    def __init__(self, specs: list[FaultSpec] | None = None, seed: int | None = None,
                 sleep=time.sleep):
        self.specs: list[FaultSpec] = list(specs or [])
        self.seed = seed
        self.history: list[tuple[str, str]] = []
        self._rng = random.Random(seed)
        self._sleep = sleep

    # -- arming ----------------------------------------------------------
    def arm(self, point: str, action: str = "raise", error: str = "transient",
            delay_s: float = 0.0, after: int = 0, times: int | None = 1,
            probability: float = 1.0) -> FaultSpec:
        """Add one trigger and return it (for later inspection)."""
        spec = FaultSpec(point, action, error, delay_s, after, times, probability)
        self.specs.append(spec)
        return spec

    def disarm(self, point: str | None = None) -> int:
        """Drop the triggers at ``point`` (all of them when ``None``)."""
        kept = [s for s in self.specs if point is not None and s.point != point]
        dropped = len(self.specs) - len(kept)
        self.specs = kept
        return dropped

    def reset(self) -> None:
        """Rewind hit/fired counters, the history and the seeded RNG."""
        for spec in self.specs:
            spec.hits = 0
            spec.fired = 0
        self.history = []
        self._rng = random.Random(self.seed)

    # -- firing ----------------------------------------------------------
    def on_span(self, name: str) -> None:
        """Called by the wrapped recorder at every span point; may raise."""
        for spec in self.specs:
            if not spec.matches(name):
                continue
            spec.hits += 1
            if spec.hits <= spec.after:
                continue
            if spec.times is not None and spec.fired >= spec.times:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            spec.fired += 1
            self.history.append((name, spec.action))
            self._fire(spec, name)

    def _fire(self, spec: FaultSpec, name: str) -> None:
        if spec.action == "delay":
            self._sleep(spec.delay_s)
            return
        if spec.action == "corrupt":
            raise DataCorruptionError(
                f"injected corruption detected at span point {name!r}")
        if spec.action == "enospc":
            raise OSError(errno.ENOSPC,
                          f"injected ENOSPC at span point {name!r}")
        if spec.error == "transient":
            raise TransientFaultError(
                f"injected transient fault at span point {name!r}", point=name)
        if spec.error == "strategy":
            raise StrategyFailureError(
                f"injected strategy failure at span point {name!r}")
        raise FaultInjectedError(
            f"injected permanent fault at span point {name!r}", point=name)

    # -- ObsContext integration ------------------------------------------
    def wrap_recorder(self, recorder) -> "InjectingRecorder":
        """The hook :class:`~repro.obs.ObsContext` calls to install us."""
        return InjectingRecorder(recorder, self)

    def describe(self) -> str:
        if not self.specs:
            return "(no faults armed)"
        return "\n".join(spec.describe() for spec in self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.specs)} specs, seed={self.seed}, fired={len(self.history)})"


class InjectingRecorder:
    """Recorder decorator: fault check first, then delegate.

    Keeps the inner recorder's duck type (``span``/``clear``/``find``/
    dumps/``enabled``) so instrumented code and ``last_trace()`` renderers
    never know the difference.  The fault fires *before* the span object
    is created, so an injected raise never leaves a half-open span.
    """

    __slots__ = ("inner", "plan")

    def __init__(self, inner, plan: FaultPlan):
        self.inner = inner
        self.plan = plan

    @property
    def enabled(self) -> bool:
        return self.inner.enabled

    def span(self, name: str, **attrs):
        self.plan.on_span(name)
        return self.inner.span(name, **attrs)

    def clear(self) -> None:
        self.inner.clear()

    def find(self, name: str):
        return self.inner.find(name)

    def to_dicts(self):
        return self.inner.to_dicts()

    def to_json(self, indent: int | None = None) -> str:
        return self.inner.to_json(indent)

    def pretty(self) -> str:
        return self.inner.pretty()
