"""Crash-safe session journaling: a write-ahead log for ``assert_clause``.

Format: JSONL, one self-contained record per line, in three kinds::

    {"type": "open", "format": "multilog-journal/2", "seq": 1, "crc": "..."}
    {"type": "snapshot", "source": "...", "version": 12, "seq": 2, "crc": "..."}
    {"type": "clause", "text": "u[acct(k : a -u-> 1)].", "version": 13, ...}

Every record carries a **sequence number** (``seq``, contiguous within
the file) and a **CRC-32 checksum** (``crc``, over the canonical JSON of
the record without the ``crc`` field), so replay distinguishes three
very different situations instead of guessing:

* a **torn tail** -- the trailing record(s) fail to decode or checksum:
  the unacknowledged residue of a crash mid-append.  Recovery moves the
  bad suffix into a sidecar **quarantine** file (``<journal>.quarantine``)
  and reports it in the :class:`RecoveryReport`; it is never silently
  dropped and never poisons the acknowledged prefix.
* **interior corruption** -- a record fails to decode or checksum but
  *intact* records follow it: acknowledged history has been damaged in
  place.  That is an integrity failure replay must not paper over, so it
  raises :class:`~repro.errors.JournalError` naming the line.
* a **sequence gap** -- two intact records whose ``seq`` numbers are not
  contiguous: an acknowledged record has vanished entirely.  Also fatal.

Durability protocol (see docs/RESILIENCE.md):

* ``assert_clause`` validates the clause *first* (Definition 5.3 on the
  trial state), then appends the record and ``fsync``\\ s before
  acknowledging.  A rejected clause therefore never touches the journal;
  an acknowledged clause survives a crash.  A *failed* append (ENOSPC,
  injected fsync fault) truncates the partial line back out so the next
  append does not merge with the residue.
* Compaction (:meth:`SessionJournal.compact`) collapses the journal to a
  single snapshot record via write-temp -> fsync -> atomic ``os.replace``
  -> parent-directory fsync: a SIGKILL at any instant leaves either the
  old journal or the new one, both replayable, never a hybrid.
* Replay restores ``database.version`` to the highest version the journal
  recorded, so version-keyed caches and snapshot-isolated readers resume
  exactly where the crashed process stopped.

Disk fault injection: :meth:`SessionJournal.arm_faults` accepts a
:class:`~repro.resilience.FaultPlan` (or anything with ``on_span``)
probed at :data:`JOURNAL_FAULT_POINTS` -- the chaos harness drives
fsync failures, ENOSPC and kill-at-step scenarios through it.

Journals written by the v1 format (``multilog-journal/1``, no checksums)
remain readable; their records are counted as ``legacy_records`` in the
recovery report and upgraded to v2 on the next compaction.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import JournalError

FORMAT = "multilog-journal/2"

#: formats :meth:`SessionJournal.replay` still accepts (checksum-less).
LEGACY_FORMATS = ("multilog-journal/1",)

#: fault points probed by journal operations (armed via ``arm_faults``).
JOURNAL_FAULT_POINTS = (
    "journal-append",
    "journal-fsync",
    "journal-compact-write",
    "journal-compact-fsync",
    "journal-compact-rename",
    "journal-compact-dirsync",
)


def database_source(db) -> str:
    """The database re-serialized as parseable MultiLog source."""
    lines = [str(clause) for clause in db.clauses()]
    lines.extend(str(query) for query in db.queries)
    return "\n".join(lines)


def record_crc(record: dict) -> str:
    """CRC-32 (8 hex digits) of the record's canonical JSON, sans ``crc``."""
    body = {key: value for key, value in record.items() if key != "crc"}
    data = json.dumps(body, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    return format(zlib.crc32(data), "08x")


@dataclass(frozen=True)
class QuarantinedRecord:
    """One journal line moved aside during recovery instead of replayed."""

    line: int  #: 1-based line number in the journal file
    raw: str  #: the raw line text, verbatim
    reason: str  #: why it could not be replayed


@dataclass
class JournalScan:
    """The raw result of one integrity pass over the journal file."""

    records: list[dict] = field(default_factory=list)
    quarantined: list[QuarantinedRecord] = field(default_factory=list)
    checksum_failures: int = 0
    legacy_records: int = 0
    last_seq: int = 0
    clauses_since_snapshot: int = 0
    #: byte length of the clean prefix (for torn-tail truncation)
    clean_bytes: int = 0


@dataclass
class RecoveryReport:
    """Everything one journal recovery did, decided and found.

    Built by :meth:`SessionJournal.replay_with_report` and completed by
    :meth:`~repro.multilog.session.MultiLogSession.recover` (which fills
    ``consistency``); rendered by ``multilog recover``.
    """

    journal: str
    records: int  #: intact records replayed (open/snapshot/clause)
    clauses_replayed: int
    snapshot_used: bool
    snapshot_version: int | None
    final_version: int
    quarantined: tuple[QuarantinedRecord, ...] = ()
    quarantine_path: str | None = None
    checksum_failures: int = 0
    legacy_records: int = 0
    #: Definition 5.4 report, attached by ``MultiLogSession.recover``.
    consistency: object | None = None

    @property
    def torn_tail(self) -> bool:
        """Did recovery quarantine an unacknowledged torn suffix?"""
        return bool(self.quarantined)

    @property
    def clean(self) -> bool:
        return not self.quarantined and not self.checksum_failures

    def to_dict(self) -> dict:
        out = {
            "journal": self.journal,
            "records": self.records,
            "clauses_replayed": self.clauses_replayed,
            "snapshot_used": self.snapshot_used,
            "snapshot_version": self.snapshot_version,
            "final_version": self.final_version,
            "torn_tail": self.torn_tail,
            "checksum_failures": self.checksum_failures,
            "legacy_records": self.legacy_records,
            "quarantined": [
                {"line": q.line, "reason": q.reason} for q in self.quarantined
            ],
            "quarantine_path": self.quarantine_path,
        }
        consistency = self.consistency
        if consistency is not None:
            out["consistent"] = bool(getattr(consistency, "ok", True))
        return out

    def summary(self) -> str:
        """Human-readable multi-line recovery summary."""
        lines = [
            f"journal: {self.journal}",
            f"replayed {self.records} record(s): "
            + ("snapshot at version "
               f"{self.snapshot_version}" if self.snapshot_used
               else "no snapshot")
            + f" + {self.clauses_replayed} clause(s)",
            f"recovered database version: {self.final_version}",
        ]
        if self.quarantined:
            lines.append(
                f"quarantined {len(self.quarantined)} torn/corrupt tail "
                f"record(s) -> {self.quarantine_path}")
            for entry in self.quarantined:
                lines.append(f"  line {entry.line}: {entry.reason}")
        else:
            lines.append("quarantined: nothing (journal tail intact)")
        if self.legacy_records:
            lines.append(f"legacy (checksum-less v1) records accepted: "
                         f"{self.legacy_records}")
        consistency = self.consistency
        if consistency is not None:
            ok = bool(getattr(consistency, "ok", True))
            lines.append("admissibility (Def 5.3): ok")
            lines.append(f"consistency (Def 5.4): {'ok' if ok else 'VIOLATED'}")
            if not ok:
                for message in consistency.all_messages():
                    lines.append(f"  {message}")
        return "\n".join(lines)


class SessionJournal:
    """Append-and-fsync JSONL journal for one MultiLog database.

    Create (or re-open) with a path; attach to a session via
    ``MultiLogSession(..., journal=...)`` or recover one with
    ``MultiLogSession.recover(path)``.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None
        #: next sequence number to write (lazily derived from the file).
        self._next_seq: int | None = None
        #: clause records appended since the last snapshot/compaction
        #: (lazily derived; drives checkpoint policies).  Guarded by
        #: ``_counter_lock``: appends increment it on whichever worker
        #: thread holds the serving write lock while the checkpoint
        #: poller reads it from its own thread.
        self._clauses_since_snapshot: int | None = None
        self._counter_lock = threading.Lock()
        #: set when a failed append could not be truncated back out: the
        #: partial line is still on disk, and appending after it would
        #: merge into it and turn an isolated torn tail into fatal
        #: interior corruption.  Appends refuse until recovery
        #: (quarantine) or compaction removes the residue.
        self._poisoned: str | None = None
        #: fault hook (``on_span(point)``) probed at JOURNAL_FAULT_POINTS.
        self._faults = None

    @property
    def quarantine_path(self) -> Path:
        """Sidecar file torn/corrupt tail records are moved into."""
        return self.path.with_name(self.path.name + ".quarantine")

    # -- fault injection -------------------------------------------------
    def arm_faults(self, plan) -> None:
        """Probe ``plan.on_span(point)`` at every disk fault point."""
        self._faults = plan

    def disarm_faults(self) -> None:
        self._faults = None

    def _probe(self, point: str) -> None:
        if self._faults is not None:
            self._faults.on_span(point)

    # -- writing ---------------------------------------------------------
    def _handle(self):
        if self._file is None or self._file.closed:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._file = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._next_seq = 1
                with self._counter_lock:
                    self._clauses_since_snapshot = 0
                self._write_record({"type": "open", "format": FORMAT})
        return self._file

    def _take_seq(self) -> int:
        if self._next_seq is None:
            scan = self.scan()
            self._next_seq = scan.last_seq + 1
            with self._counter_lock:
                if self._clauses_since_snapshot is None:
                    self._clauses_since_snapshot = scan.clauses_since_snapshot
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def _write_record(self, record: dict) -> None:
        """Append one sealed (seq + crc) record; fsync before returning.

        A failed write (ENOSPC, injected fsync fault) truncates the
        partial line back out so the journal never accumulates a torn
        *interior* -- the next append continues from the clean prefix.
        """
        handle = self._file
        record = dict(record)
        record["seq"] = self._take_seq()
        record["crc"] = record_crc(record)
        start = handle.tell()
        try:
            self._probe("journal-append")
            handle.write(json.dumps(record, ensure_ascii=False) + "\n")
            handle.flush()
            self._probe("journal-fsync")
            os.fsync(handle.fileno())
        except Exception:
            self._next_seq = record["seq"]  # the record never became durable
            self._heal(handle, start)
            raise

    def _heal(self, handle, start: int) -> None:
        """Truncate a partially written record back out, or poison.

        If the truncation itself fails the partial line stays on disk;
        a further append would concatenate onto it, and once an intact
        record followed the merged garbage, :meth:`scan` would (rightly)
        treat it as fatal interior corruption of acknowledged history.
        So an unhealed journal is poisoned: appends refuse until
        recovery quarantines the residue or compaction rewrites the
        file.
        """
        try:
            handle.flush()
        except OSError:
            pass
        try:
            handle.truncate(start)
            handle.seek(start)
        except OSError as exc:
            self._poisoned = (f"failed append left an unhealed partial "
                              f"record at byte {start} ({exc})")
            return
        try:
            os.fsync(handle.fileno())
        except OSError:
            # The truncation landed in the file; if its fsync was lost
            # with a crash, replay sees a torn tail -- quarantinable,
            # not interior corruption.  The next append fsyncs anyway.
            pass

    def _check_poisoned(self) -> None:
        if self._poisoned is not None:
            raise JournalError(
                f"{self.path}: journal poisoned: {self._poisoned}; "
                "run recovery (or compact) before appending")

    def append_clause(self, text: str, version: int) -> None:
        """Durably record one asserted clause (fsync before returning)."""
        self._check_poisoned()
        self._handle()
        try:
            self._write_record({"type": "clause", "text": text,
                                "version": version})
        except OSError as exc:
            raise JournalError(
                f"{self.path}: journal append failed: {exc}") from exc
        with self._counter_lock:
            if self._clauses_since_snapshot is not None:
                self._clauses_since_snapshot += 1

    def snapshot(self, db) -> None:
        """Append a full-database snapshot record (non-compacting)."""
        self._check_poisoned()
        self._handle()
        try:
            self._write_record({"type": "snapshot",
                                "source": database_source(db),
                                "version": db.version})
        except OSError as exc:
            raise JournalError(
                f"{self.path}: journal snapshot failed: {exc}") from exc
        with self._counter_lock:
            self._clauses_since_snapshot = 0

    def compact(self, db) -> None:
        """Atomically replace the journal with one snapshot of ``db``.

        Write-to-temp + fsync + ``os.replace`` + parent-dir fsync: a
        crash (including SIGKILL) at any instant leaves either the old
        journal or the new one, never a hybrid.  Safe to run while the
        owning process keeps serving, provided writes are excluded for
        the duration (the serving layer holds its write lock).
        """
        self.close()
        # Invalidate the counters up front: if compaction fails *after*
        # the rename (e.g. the dir fsync), the file already holds seq
        # 1-2 and a stale counter would make the next append a sequence
        # gap.  ``None`` forces the next append to rescan.
        self._next_seq = None
        with self._counter_lock:
            self._clauses_since_snapshot = None
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            self._probe("journal-compact-write")
            with open(tmp, "w", encoding="utf-8") as handle:
                for seq, record in enumerate(
                        ({"type": "open", "format": FORMAT},
                         {"type": "snapshot", "source": database_source(db),
                          "version": db.version}), start=1):
                    record["seq"] = seq
                    record["crc"] = record_crc(record)
                    handle.write(json.dumps(record, ensure_ascii=False) + "\n")
                handle.flush()
                self._probe("journal-compact-fsync")
                os.fsync(handle.fileno())
            self._probe("journal-compact-rename")
            os.replace(tmp, self.path)
            self._probe("journal-compact-dirsync")
        except OSError as exc:
            raise JournalError(
                f"{self.path}: journal compaction failed: {exc}") from exc
        self._fsync_dir()
        self._next_seq = 3
        with self._counter_lock:
            self._clauses_since_snapshot = 0
        # The journal is a fresh snapshot file: any unhealed residue of
        # a failed append went with the old file.
        self._poisoned = None

    def _fsync_dir(self) -> None:
        """Make the rename itself durable (best effort off POSIX)."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = None

    # -- checkpoint bookkeeping ------------------------------------------
    def checkpoint_stats(self) -> tuple[int, int]:
        """``(clauses since last snapshot, journal size in bytes)``.

        Drives :class:`~repro.resilience.CheckpointPolicy` decisions;
        cheap after the first call (a counter and one ``stat``).  Safe
        to call from the checkpoint poller's thread while appends run on
        another: the counter is read under ``_counter_lock`` (a scan
        racing an in-flight append may see its torn line as a would-be
        torn tail, which only mistimes one poll -- tolerable).
        """
        with self._counter_lock:
            clauses = self._clauses_since_snapshot
        if clauses is None:
            scanned = self.scan().clauses_since_snapshot
            with self._counter_lock:
                if self._clauses_since_snapshot is None:
                    self._clauses_since_snapshot = scanned
                clauses = self._clauses_since_snapshot
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return clauses, size

    # -- reading ---------------------------------------------------------
    def scan(self) -> JournalScan:
        """One integrity pass: decode, checksum and sequence-check.

        Corruption in a contiguous *suffix* of the file is collected as
        quarantine candidates (the torn residue of a crash mid-append).
        Corruption *followed by an intact record*, or a sequence gap
        between intact records, is damage to acknowledged history and
        raises :class:`~repro.errors.JournalError` -- replay must not
        silently skip what was once durable.
        """
        scan = JournalScan()
        if not self.path.exists():
            return scan
        data = self.path.read_bytes()
        text = data.decode("utf-8", errors="replace")
        raw_lines = text.split("\n")
        while raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        expected_seq: int | None = None
        fmt: str | None = None
        offset = 0
        pending: list[tuple[int, str, str]] = []  # (line, raw, reason)
        for index, line in enumerate(raw_lines):
            line_bytes = len(line.encode("utf-8", errors="replace")) + 1
            reason = self._vet_line(line, fmt)
            if reason is not None:
                pending.append((index + 1, line, reason))
                offset += line_bytes
                continue
            if pending:
                # An intact record after corrupt ones: not a torn tail.
                first = pending[0]
                raise JournalError(
                    f"{self.path}: corrupt journal record on line "
                    f"{first[0]}: {first[2]}")
            record = json.loads(line)
            if record["type"] == "open":
                fmt = record.get("format")
            seq = record.get("seq")
            if seq is not None:
                if expected_seq is not None and seq != expected_seq:
                    # An intact record out of sequence is a hole in
                    # acknowledged history, never a torn tail: fatal.
                    raise JournalError(
                        f"{self.path}: sequence gap in journal: expected "
                        f"record seq {expected_seq}, found {seq}")
                expected_seq = seq + 1
                scan.last_seq = seq
            else:
                scan.legacy_records += 1
                scan.last_seq += 1
            if record["type"] == "clause":
                scan.clauses_since_snapshot += 1
            elif record["type"] == "snapshot":
                scan.clauses_since_snapshot = 0
            scan.records.append(record)
            offset += line_bytes
            scan.clean_bytes = min(offset, len(data))
        scan.quarantined = [QuarantinedRecord(line, raw, reason)
                            for line, raw, reason in pending]
        scan.checksum_failures = sum(
            1 for entry in scan.quarantined if "checksum" in entry.reason)
        return scan

    def _vet_line(self, line: str, fmt: str | None) -> str | None:
        """The reason this line cannot be replayed, or ``None`` if intact."""
        try:
            record = json.loads(line)
        except ValueError as exc:
            return f"undecodable JSON ({exc})"
        if not isinstance(record, dict) or "type" not in record:
            return "malformed record (not an object with a 'type')"
        crc = record.get("crc")
        if crc is not None:
            if not isinstance(crc, str) or record_crc(record) != crc:
                return (f"checksum mismatch (recorded {crc!r}, "
                        f"computed {record_crc(record)!r})")
        elif fmt == FORMAT:
            return "missing checksum in a v2 journal"
        return None

    def entries(self) -> list[dict]:
        """Every intact record, tolerating only a torn/corrupt tail.

        Corruption anywhere else is a real integrity failure and raises
        :class:`~repro.errors.JournalError` -- replay must not silently
        skip acknowledged history.  Use :meth:`replay_with_report` to
        also quarantine the torn tail into the sidecar file.
        """
        return self.scan().records

    def _replay_records(self, records: list[dict]):
        """Build the database the intact records describe."""
        from repro.multilog.ast import MultiLogDatabase
        from repro.multilog.parser import parse_clause, parse_database

        start = 0
        for index, record in enumerate(records):
            if record["type"] == "snapshot":
                start = index
        db = MultiLogDatabase()
        pending: list = []
        snapshot_version: int | None = None
        last_version: int | None = None
        clauses = 0
        for record in records[start:]:
            kind = record["type"]
            if kind == "open":
                fmt = record.get("format")
                if fmt != FORMAT and fmt not in LEGACY_FORMATS:
                    raise JournalError(
                        f"{self.path}: unknown journal format {fmt!r}")
            elif kind == "snapshot":
                db = parse_database(record["source"])
                pending.clear()
                snapshot_version = record.get("version")
                last_version = record.get("version")
            elif kind == "clause":
                pending.append(parse_clause(record["text"]))
                clauses += 1
                last_version = record.get("version", last_version)
            else:
                raise JournalError(
                    f"{self.path}: unknown journal record type {kind!r}")
        # Bulk-load the tail in one version bump: recovery replays every
        # clause before the first query, so per-clause memo invalidation
        # would be pure overhead.
        db.add_clauses(pending)
        # Resume the version counter where the crashed process stopped:
        # version-keyed caches and snapshot-isolated readers must never
        # see a recovered database travel back in time.
        if last_version is not None and last_version > db.version:
            db.version = last_version
        return db, snapshot_version, clauses

    def replay(self):
        """The :class:`~repro.multilog.ast.MultiLogDatabase` the journal
        describes: the latest snapshot, plus every clause after it."""
        db, _snapshot_version, _clauses = self._replay_records(self.entries())
        return db

    def replay_with_report(self, quarantine: bool = True):
        """Replay and account: ``(database, RecoveryReport)``.

        With ``quarantine=True`` (the default) a torn/corrupt tail is
        *moved* into the sidecar quarantine file -- appended there with
        an fsync, then truncated out of the journal -- so the journal is
        clean for subsequent appends and nothing is silently discarded.
        """
        scan = self.scan()
        quarantine_path: str | None = None
        if scan.quarantined and quarantine:
            self._write_quarantine(scan)
            quarantine_path = str(self.quarantine_path)
        if not scan.quarantined:
            # Nothing torn on disk: a poisoning failed append never
            # actually landed, so the journal is safe to append to.
            self._poisoned = None
        db, snapshot_version, clauses = self._replay_records(scan.records)
        report = RecoveryReport(
            journal=str(self.path),
            records=len(scan.records),
            clauses_replayed=clauses,
            snapshot_used=snapshot_version is not None,
            snapshot_version=snapshot_version,
            final_version=db.version,
            quarantined=tuple(scan.quarantined),
            quarantine_path=quarantine_path,
            checksum_failures=scan.checksum_failures,
            legacy_records=scan.legacy_records,
        )
        return db, report

    def _write_quarantine(self, scan: JournalScan) -> None:
        """Move the torn suffix into the sidecar, then truncate it out.

        Sidecar first (fsync), truncation second: a crash in between
        duplicates quarantine entries, which is harmless; the reverse
        order could lose the torn bytes entirely.
        """
        self.close()
        try:
            with open(self.quarantine_path, "a", encoding="utf-8") as handle:
                for entry in scan.quarantined:
                    handle.write(json.dumps(
                        {"line": entry.line, "reason": entry.reason,
                         "raw": entry.raw}, ensure_ascii=False) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            with open(self.path, "r+b") as handle:
                handle.truncate(scan.clean_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"{self.path}: quarantine of torn tail failed: {exc}") from exc
        self._fsync_dir()
        # The torn residue (including any unhealed partial append that
        # poisoned the journal) is out of the file: appends are safe.
        self._poisoned = None
