"""Crash-safe session journaling: a write-ahead log for ``assert_clause``.

Format: JSONL, one self-contained record per line, in three kinds::

    {"type": "open", "format": "multilog-journal/1"}
    {"type": "snapshot", "source": "<full database source>", "version": 12}
    {"type": "clause", "text": "u[acct(k : a -u-> 1)].", "version": 13}

Durability protocol (see docs/RESILIENCE.md):

* ``assert_clause`` validates the clause *first* (Definition 5.3 on the
  trial state), then appends the record and ``fsync``\\ s before
  acknowledging.  A rejected clause therefore never touches the journal;
  an acknowledged clause survives a crash.
* A crash mid-append leaves at most one torn final line.  Replay
  tolerates exactly that: a record that fails to decode is fatal
  (:class:`~repro.errors.JournalError`) unless it is the last line of the
  file, in which case it is the torn tail of an unacknowledged write and
  is dropped.
* Compaction (:meth:`SessionJournal.compact`) collapses the journal to a
  single snapshot record, written to a temp file, fsynced, and atomically
  ``os.replace``\\ d over the journal -- the journal is never in a state
  replay cannot read.

Everything in a record is plain text in the MultiLog concrete syntax:
clauses and snapshots round-trip through the parser, so a journal is
also a human-readable audit log.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import JournalError

FORMAT = "multilog-journal/1"


def database_source(db) -> str:
    """The database re-serialized as parseable MultiLog source."""
    lines = [str(clause) for clause in db.clauses()]
    lines.extend(str(query) for query in db.queries)
    return "\n".join(lines)


class SessionJournal:
    """Append-and-fsync JSONL journal for one MultiLog database.

    Create (or re-open) with a path; attach to a session via
    ``MultiLogSession(..., journal=...)`` or recover one with
    ``MultiLogSession.recover(path)``.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._file = None

    # -- writing ---------------------------------------------------------
    def _handle(self):
        if self._file is None or self._file.closed:
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._file = open(self.path, "a", encoding="utf-8")
            if fresh:
                self._write_record({"type": "open", "format": FORMAT})
        return self._file

    def _write_record(self, record: dict) -> None:
        handle = self._file
        handle.write(json.dumps(record, ensure_ascii=False) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def append_clause(self, text: str, version: int) -> None:
        """Durably record one asserted clause (fsync before returning)."""
        self._handle()
        self._write_record({"type": "clause", "text": text, "version": version})

    def snapshot(self, db) -> None:
        """Append a full-database snapshot record (non-compacting)."""
        self._handle()
        self._write_record({"type": "snapshot", "source": database_source(db),
                            "version": db.version})

    def compact(self, db) -> None:
        """Atomically replace the journal with one snapshot of ``db``.

        Write-to-temp + fsync + ``os.replace``: a crash at any point
        leaves either the old journal or the new one, never a hybrid.
        """
        self.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"type": "open", "format": FORMAT}) + "\n")
            handle.write(json.dumps(
                {"type": "snapshot", "source": database_source(db),
                 "version": db.version}, ensure_ascii=False) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        """Make the rename itself durable (best effort off POSIX)."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            self._file.close()
        self._file = None

    # -- reading ---------------------------------------------------------
    def entries(self) -> list[dict]:
        """Every decodable record, dropping only a torn final line.

        A corrupt record anywhere else is a real integrity failure and
        raises :class:`~repro.errors.JournalError` -- replay must not
        silently skip acknowledged history.
        """
        if not self.path.exists():
            return []
        raw_lines = self.path.read_text(encoding="utf-8").split("\n")
        # Trailing "" from a final newline is not a torn record.
        while raw_lines and raw_lines[-1] == "":
            raw_lines.pop()
        records: list[dict] = []
        for index, line in enumerate(raw_lines):
            try:
                record = json.loads(line)
            except ValueError as exc:
                if index == len(raw_lines) - 1:
                    break  # torn tail of an unacknowledged append
                raise JournalError(
                    f"{self.path}: corrupt journal record on line {index + 1}: {exc}"
                ) from exc
            if not isinstance(record, dict) or "type" not in record:
                raise JournalError(
                    f"{self.path}: malformed journal record on line {index + 1}")
            records.append(record)
        return records

    def replay(self):
        """The :class:`~repro.multilog.ast.MultiLogDatabase` the journal
        describes: the latest snapshot, plus every clause after it."""
        from repro.multilog.ast import MultiLogDatabase
        from repro.multilog.parser import parse_clause, parse_database

        entries = self.entries()
        # Only records after the *last* snapshot matter.
        start = 0
        for index, record in enumerate(entries):
            if record["type"] == "snapshot":
                start = index
        db = MultiLogDatabase()
        pending: list = []
        for record in entries[start:]:
            kind = record["type"]
            if kind == "open":
                if record.get("format") != FORMAT:
                    raise JournalError(
                        f"{self.path}: unknown journal format {record.get('format')!r}")
            elif kind == "snapshot":
                db = parse_database(record["source"])
                pending.clear()
            elif kind == "clause":
                pending.append(parse_clause(record["text"]))
            else:
                raise JournalError(
                    f"{self.path}: unknown journal record type {kind!r}")
        # Bulk-load the tail in one version bump: recovery replays every
        # clause before the first query, so per-clause memo invalidation
        # would be pure overhead.
        db.add_clauses(pending)
        return db
