"""The degradation ladder: retry, fall back, degrade -- in that order.

A :class:`ResilientExecutor` wraps the two evaluation entry points --
:func:`repro.datalog.engine.evaluate` and ``MultiLogSession.ask`` --
with a three-step failure policy:

1. **Retry** transient faults (:func:`repro.errors.is_transient`) on the
   same ladder rung, with capped exponential backoff.
2. **Fall back** one rung when a rung fails in a strategy-specific way
   (:class:`~repro.errors.StrategyFailureError`) or keeps failing after
   all retries: ``vectorized -> compiled -> seminaive -> naive``.  The
   lower rungs are slower but simpler -- fewer moving parts (no column
   batches, then no compiled plans, then no delta bookkeeping), so they
   dodge whole classes of failures, the
   module-level evaluation-choice idea from CORAL read as a fallback
   ladder.
3. **Degrade** on budget exhaustion: with ``allow_partial=True`` the
   caller gets a :class:`PartialResult` -- the answers derived before the
   abort, ``complete=False``, and the rung that served it -- instead of a
   :class:`~repro.errors.BudgetExceededError`.

Permanent errors (unsafe rules, inadmissible databases, permanent
injected faults) propagate immediately from any rung: no amount of
retrying fixes a property of the program.

The disabled path -- no faults armed, no budget, first attempt succeeds
-- costs one ``try`` frame and a couple of attribute reads per call;
``benchmarks/bench_resilience_overhead.py`` keeps it honest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.datalog.columnar import ColumnarDatabase
from repro.datalog.database import Database
from repro.datalog.engine import evaluate as _engine_evaluate
from repro.datalog.rules import Program
from repro.errors import (
    BudgetExceededError,
    ReproError,
    StrategyFailureError,
    is_transient,
)
from repro.obs.budget import EvaluationBudget

#: The full ladder, fastest first.  An executor's ladder may start lower
#: (the requested strategy) but always descends in this order.  The
#: ``vectorized`` rung only serves sessions on the columnar backend; row
#: sessions enter at ``compiled`` (see :meth:`ResilientExecutor.ask`).
LADDER = ("vectorized", "compiled", "seminaive", "naive")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a transient fault, and how fast.

    Backoff for retry ``n`` (0-based) is ``min(max_delay_s, base_delay_s
    * 2**n)`` -- capped exponential.  The default base of 0 keeps tests
    and interactive use instant; services should set a real base.
    """

    max_retries: int = 2
    base_delay_s: float = 0.0
    max_delay_s: float = 1.0

    def delay_for(self, attempt: int) -> float:
        if self.base_delay_s <= 0.0:
            return 0.0
        return min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))


@dataclass
class PartialResult:
    """What a degraded evaluation could still deliver.

    ``answers`` is filled by :meth:`ResilientExecutor.ask`, ``database``
    by :meth:`ResilientExecutor.evaluate`; the other stays ``None``.
    ``complete`` is always ``False`` -- a complete result is returned as
    its natural type, never wrapped.  For negation-free programs the
    partial answers are a *subset* of the fault-free answers (bottom-up
    evaluation is monotone); with stratified negation an aborted lower
    stratum can surface answers the complete run would retract, which is
    why the flag, not the content, is the contract.
    """

    complete: bool
    rung: str
    reason: str
    answers: list[dict[str, object]] | None = None
    database: Database | ColumnarDatabase | None = None
    attempts: int = 1

    def __bool__(self) -> bool:
        return bool(self.answers) or self.database is not None


@dataclass
class Outcome:
    """Bookkeeping for the most recent executor call (``last_outcome``)."""

    rung: str = ""
    requested: str = ""
    attempts: int = 0
    retries: int = 0
    fallbacks: int = 0
    degraded: str | None = None
    errors: list[str] = field(default_factory=list)


class ResilientExecutor:
    """Retry / fall back / degrade wrapper around the evaluation stack.

    >>> from repro.resilience import ResilientExecutor
    >>> executor = ResilientExecutor(allow_partial=True)
    >>> # db_or_partial = executor.evaluate(program)
    >>> # answers = executor.ask(session, "s[acct(K : balance -C-> V)] << cau")

    One executor is reusable across calls; ``last_outcome`` describes the
    most recent one (rung served, attempts, retries, fallbacks).
    """

    def __init__(self, retry: RetryPolicy | None = None,
                 ladder: tuple[str, ...] = LADDER,
                 allow_partial: bool = False,
                 budget: EvaluationBudget | None = None,
                 sleep=time.sleep):
        self.retry = retry if retry is not None else RetryPolicy()
        self.ladder = tuple(ladder)
        self.allow_partial = allow_partial
        self.budget = budget
        self.last_outcome = Outcome()
        self._sleep = sleep

    # ------------------------------------------------------------------
    def _rungs_from(self, strategy: str) -> tuple[str, ...]:
        """The ladder from ``strategy`` down (or just it, if not on it)."""
        if strategy in self.ladder:
            return self.ladder[self.ladder.index(strategy):]
        return (strategy,)

    def _run_rungs(self, rungs: tuple[str, ...], attempt_rung, outcome: Outcome):
        """Shared retry/fallback driver.

        ``attempt_rung(rung)`` performs one attempt; transient failures
        retry the rung, strategy failures and exhausted retries descend,
        everything else propagates.  Returns the first success.
        """
        last_error: BaseException | None = None
        for index, rung in enumerate(rungs):
            outcome.rung = rung
            if index:
                outcome.fallbacks += 1
            for attempt in range(self.retry.max_retries + 1):
                outcome.attempts += 1
                try:
                    return attempt_rung(rung)
                except StrategyFailureError as exc:
                    outcome.errors.append(f"{rung}: {exc}")
                    last_error = exc
                    break  # strategy-specific: no point retrying this rung
                except BudgetExceededError:
                    raise  # handled by the caller (degrade, not retry)
                except ReproError as exc:
                    if not is_transient(exc):
                        raise
                    outcome.errors.append(f"{rung}: {exc}")
                    last_error = exc
                    if attempt < self.retry.max_retries:
                        outcome.retries += 1
                        delay = self.retry.delay_for(attempt)
                        if delay:
                            self._sleep(delay)
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    def evaluate(self, program: Program, strategy: str = "compiled",
                 budget: EvaluationBudget | None = None,
                 **kwargs) -> Database | PartialResult:
        """Resilient :func:`repro.datalog.engine.evaluate`.

        Returns the least model :class:`Database` on success (possibly
        from a lower rung), a :class:`PartialResult` on budget exhaustion
        when ``allow_partial`` is set, and raises otherwise.
        """
        outcome = Outcome(requested=strategy)
        self.last_outcome = outcome
        effective_budget = budget if budget is not None else self.budget

        def attempt_rung(rung: str) -> Database:
            return _engine_evaluate(program, strategy=rung,
                                    budget=effective_budget, **kwargs)

        try:
            result = self._run_rungs(self._rungs_from(strategy), attempt_rung, outcome)
        except BudgetExceededError as exc:
            if not self.allow_partial:
                raise
            outcome.degraded = f"{outcome.rung}:budget-{exc.reason}"
            partial = exc.partial_database
            return PartialResult(
                complete=False, rung=outcome.rung,
                reason=f"budget-{exc.reason}",
                database=(partial
                          if isinstance(partial, (Database, ColumnarDatabase))
                          else None),
                attempts=outcome.attempts,
            )
        if outcome.rung != strategy:
            outcome.degraded = f"{outcome.rung}:fallback"
        return result

    # ------------------------------------------------------------------
    def ask(self, session, query, engine: str = "operational"
            ) -> list[dict[str, object]] | PartialResult:
        """Resilient ``MultiLogSession.ask``.

        Transient faults retry the ask; a strategy-specific failure on the
        reduction path re-evaluates the reduced program one ladder rung
        down and serves the ask from that model; budget exhaustion with
        ``allow_partial`` salvages the answers derivable from the partial
        model and returns them in a :class:`PartialResult`.  Either
        degradation is surfaced through ``session.last_stats().degraded``
        and a ``degraded`` attribute on the ask's root span.
        """
        # The session's native rung: a columnar session serves its asks
        # from the vectorized model, a row session from the compiled one.
        native = ("vectorized"
                  if getattr(session, "backend", "dict") == "columnar"
                  else "compiled")
        outcome = Outcome(requested=native)
        self.last_outcome = outcome
        rungs = self._rungs_from(native) if self.ladder else (native,)
        collector = getattr(session, "_metrics", None)

        def attempt_rung(rung: str) -> list[dict[str, object]]:
            # Bracket the attempt: an aborted try's firings/rounds/probes
            # roll back so ``:stats`` after the ladder settles reports the
            # *serving* attempt, not a merge of every aborted one.  A
            # budget abort is exempt -- when ``allow_partial`` salvages
            # from it, that attempt IS the serving one.
            state = collector.mark() if collector is not None else None
            try:
                if rung == rungs[0]:
                    return session.ask(query, engine=engine)
                # A lower rung: rebuild the reduced program's least model
                # with the simpler strategy, then serve the ask from it.
                # (The operational engine has no strategy knob; the
                # reduction semantics answers the same queries --
                # Theorem 6.1.)
                reduced = session.reduced
                reduced._model = None
                reduced._model = _engine_evaluate(reduced.program, strategy=rung,
                                                  budget=self.budget)
                reduced.fixpoint_runs += 1
                return session.ask(query, engine="reduction")
            except BudgetExceededError:
                raise
            except BaseException:
                if state is not None:
                    collector.rollback(state)
                raise

        def settle(rung: str) -> None:
            """Sync the outcome's resilience counters into the session."""
            if collector is None:
                return
            for _ in range(outcome.retries):
                collector.count_retry()
            for _ in range(outcome.fallbacks):
                collector.count_fallback()
            if outcome.degraded:
                collector.count_degraded()
            stamp = getattr(session, "_stamp_attempt", None)
            if stamp is not None:
                stamp(rung, outcome.attempts or None)

        try:
            answers = self._run_rungs(rungs, attempt_rung, outcome)
        except BudgetExceededError as exc:
            if not self.allow_partial:
                settle(outcome.rung)
                raise
            outcome.degraded = f"{outcome.rung}:budget-{exc.reason}"
            salvaged = self._salvage_answers(session, query, exc)
            settle(outcome.rung)
            session._mark_degraded(outcome.rung, f"budget-{exc.reason}")
            return PartialResult(
                complete=False, rung=outcome.rung,
                reason=f"budget-{exc.reason}",
                answers=salvaged, attempts=outcome.attempts,
            )
        if outcome.rung != rungs[0]:
            outcome.degraded = f"{outcome.rung}:fallback"
            settle(outcome.rung)
            session._mark_degraded(outcome.rung, "fallback")
        else:
            settle(outcome.rung)
        return answers

    def _salvage_answers(self, session, query, exc: BudgetExceededError
                         ) -> list[dict[str, object]]:
        """Answers derivable from the partial model the abort left behind.

        Budget-free and best-effort: any error during salvage yields the
        empty list (the result is flagged incomplete either way).
        """
        partial = exc.partial_database
        if not isinstance(partial, (Database, ColumnarDatabase)):
            return []
        try:
            from repro.multilog.parser import parse_query
            from repro.obs.context import DISABLED, use as _use_obs

            reduced = session.reduced
            parsed = parse_query(query) if isinstance(query, str) else query
            saved = reduced._model
            reduced._model = partial
            try:
                with _use_obs(DISABLED):
                    return reduced.query(parsed)
            finally:
                reduced._model = saved
        except ReproError:
            return []
