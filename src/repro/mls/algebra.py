"""Multilevel relational algebra (the Jajodia-Sandhu operator family).

The SQL front-end and the belief function both consume whole relations;
this module provides the composable classified operators underneath:

* :func:`select_where` -- classification-preserving selection;
* :func:`project` -- projection with the tuple class recomputed as the
  lub of the retained cell classifications (dropping a high column can
  legitimately *lower* a tuple's class);
* :func:`join` -- natural join on shared attributes; matching requires
  equal *classified* cells (value and classification), and the result's
  tuple class is ``lub(tc1, tc2)``;
* :func:`union` / :func:`difference` / :func:`intersection` -- set
  operations over identically-shaped relations.

All operators are pure: inputs are never mutated, results are fresh
relations over derived schemes.  Classification propagation follows the
conservative reading of the multilevel algebra: derived data is at least
as classified as everything it was computed from.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.errors import SchemaError
from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.schema import MLSchema
from repro.mls.tuples import MLSTuple


def select_where(relation: MLSRelation,
                 predicate: Callable[[MLSTuple], bool]) -> MLSRelation:
    """Selection: tuples satisfying ``predicate``, classifications intact."""
    return relation.select(predicate)


def _projected_schema(relation: MLSRelation, attributes: Sequence[str]) -> MLSchema:
    kept = [a for a in relation.schema.attributes if a in set(attributes)]
    if not kept:
        raise SchemaError("projection must retain at least one attribute")
    if all(k in kept for k in relation.schema.key):
        key: Sequence[str] = relation.schema.key
    else:
        # The apparent key was projected away: every retained attribute
        # becomes part of the (candidate) key, the classical fallback.
        key = tuple(kept)
    return MLSchema(
        f"{relation.schema.name}_proj", kept, key=key, lattice=relation.schema.lattice,
    )


def project(relation: MLSRelation, attributes: Sequence[str]) -> MLSRelation:
    """Projection with recomputed tuple classes.

    The result's TC is the lub of the retained cell classifications --
    dropping the only high column declassifies the remaining tuple, which
    is exactly how a projection can be released at a lower level.
    Duplicate projected tuples collapse.
    """
    schema = _projected_schema(relation, attributes)
    out = MLSRelation(schema)
    for t in relation:
        cells = {attr: t.cell(attr) for attr in schema.attributes}
        out.add(MLSTuple(schema, cells))  # tc = lub of retained cells
    return out


def join(left: MLSRelation, right: MLSRelation,
         name: str | None = None) -> MLSRelation:
    """Natural join on the shared attributes.

    Two tuples match only when every shared attribute agrees on *both*
    value and classification (a U-classified "mars" is not the same
    evidence as an S-classified "mars").  The joined tuple carries every
    cell of both sides and ``tc = lub(tc_left, tc_right)``.
    """
    if left.schema.lattice != right.schema.lattice:
        raise SchemaError("cannot join relations over different lattices")
    shared = [a for a in left.schema.attributes if a in right.schema.attributes]
    right_only = [a for a in right.schema.attributes if a not in shared]
    attributes = list(left.schema.attributes) + right_only
    schema = MLSchema(
        name or f"{left.schema.name}_{right.schema.name}",
        attributes,
        key=left.schema.key,
        lattice=left.schema.lattice,
    )
    lattice = schema.lattice
    out = MLSRelation(schema)
    for lt in left:
        for rt in right:
            if any(lt.cell(a) != rt.cell(a) for a in shared):
                continue
            cells = {a: lt.cell(a) for a in left.schema.attributes}
            cells.update({a: rt.cell(a) for a in right_only})
            tc = lattice.lub(lt.tc, rt.tc)
            out.add(MLSTuple(schema, cells, tc=tc))
    return out


def _check_compatible(a: MLSRelation, b: MLSRelation) -> None:
    if a.schema.attributes != b.schema.attributes or a.schema.lattice != b.schema.lattice:
        raise SchemaError(
            f"set operation over incompatible schemes "
            f"{a.schema.attributes} / {b.schema.attributes}"
        )


def union(a: MLSRelation, b: MLSRelation) -> MLSRelation:
    """Set union (duplicates collapse; classifications distinguish rows)."""
    _check_compatible(a, b)
    out = MLSRelation(a.schema, a.tuples)
    for t in b:
        out.add(MLSTuple(a.schema, dict(zip(a.schema.attributes, t.cells)), tc=t.tc))
    return out


def difference(a: MLSRelation, b: MLSRelation) -> MLSRelation:
    """Tuples of ``a`` not present (cell-and-TC identical) in ``b``."""
    _check_compatible(a, b)
    exclude = {(t.cells, t.tc) for t in b}
    return MLSRelation(
        a.schema, (t for t in a if (t.cells, t.tc) not in exclude)
    )


def intersection(a: MLSRelation, b: MLSRelation) -> MLSRelation:
    """Tuples present in both relations."""
    _check_compatible(a, b)
    keep = {(t.cells, t.tc) for t in b}
    return MLSRelation(
        a.schema, (t for t in a if (t.cells, t.tc) in keep)
    )


def declassified_level(relation: MLSRelation) -> Level | None:
    """The lowest level at which the *whole* relation could be released:
    the lub of every cell classification and tuple class (None if empty)."""
    lattice = relation.schema.lattice
    levels = [t.tc for t in relation]
    levels.extend(cell.cls for t in relation for cell in t.cells)
    if not levels:
        return None
    return lattice.lub(*levels)
