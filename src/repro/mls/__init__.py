"""The MLS relational substrate (Jajodia-Sandhu model, Sections 2-3).

Everything the paper's figures are computed from: schemes, classified
tuples, per-level views with subsumption, the three core integrity
properties, a polyinstantiating update engine, and the surprise-story
detector.
"""

from repro.mls.algebra import (
    declassified_level,
    difference,
    intersection,
    join,
    project,
    select_where,
    union,
)
from repro.mls.integrity import (
    Violation,
    assert_consistent,
    check_entity_integrity,
    check_null_integrity,
    check_polyinstantiation_integrity,
    check_relation,
    is_consistent,
)
from repro.mls.relation import MLSRelation
from repro.mls.schema import MLSchema
from repro.mls.surprise import (
    SurpriseStory,
    is_surprise_free,
    surprise_stories,
    surprise_stories_at,
)
from repro.mls.tuples import NULL, Cell, MLSTuple, is_null
from repro.mls.updates import SessionCursor
from repro.mls.views import (
    mask_tuple,
    minimize_by_subsumption,
    strictly_subsumes,
    subsumes,
    view_at,
)

__all__ = [
    "Cell",
    "declassified_level",
    "difference",
    "intersection",
    "join",
    "project",
    "select_where",
    "union",
    "MLSRelation",
    "MLSTuple",
    "MLSchema",
    "NULL",
    "SessionCursor",
    "SurpriseStory",
    "Violation",
    "assert_consistent",
    "check_entity_integrity",
    "check_null_integrity",
    "check_polyinstantiation_integrity",
    "check_relation",
    "is_consistent",
    "is_null",
    "is_surprise_free",
    "mask_tuple",
    "minimize_by_subsumption",
    "strictly_subsumes",
    "subsumes",
    "surprise_stories",
    "surprise_stories_at",
    "view_at",
]
