"""Per-level views of multilevel relations (Definition 2.3, figures 2-3).

The view of relation ``r`` at access class ``c`` under the Jajodia-Sandhu
reading:

* tuples whose apparent-key classification is not dominated by ``c`` are
  invisible;
* in the remaining tuples, every cell with classification not dominated by
  ``c`` is masked to ``(NULL, C_AK)`` (null integrity classifies nulls at
  the key level);
* the displayed tuple class is the stored ``TC`` when visible, otherwise
  ``c`` itself (this is the reading that reproduces Figures 2 and 3: t4
  shows ``TC = U`` at the U view and ``TC = C`` at the C view);
* finally *subsumption* removes tuples made redundant by more complete
  ones, hiding the existence of higher-level data where possible.

Subsumption (Definition 5.4 restated relationally): ``u`` subsumes ``v``
when for every attribute either the ``(value, class)`` pairs coincide or
``u`` holds a non-null where ``v`` holds null.  Among otherwise identical
tuples that differ only in TC the one with the dominating TC is kept.
"""

from __future__ import annotations

from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import Cell, MLSTuple, NULL


def mask_tuple(t: MLSTuple, level: Level) -> MLSTuple | None:
    """Apply Definition 2.3 to a single tuple; ``None`` when invisible."""
    lattice = t.schema.lattice
    key_cls = t.key_classification()
    if not lattice.leq(key_cls, level):
        return None
    new_cells: dict[str, Cell] = {}
    for attr in t.schema.attributes:
        cell = t.cell(attr)
        if lattice.leq(cell.cls, level):
            new_cells[attr] = cell
        else:
            new_cells[attr] = Cell(NULL, key_cls)
    displayed_tc = t.tc if lattice.leq(t.tc, level) else level
    return MLSTuple(t.schema, new_cells, tc=displayed_tc)


def subsumes(u: MLSTuple, v: MLSTuple) -> bool:
    """True when ``u`` subsumes ``v`` (u at least as informative, cell-wise).

    Tuples t4/t5 of the running example do *not* subsume each other: their
    key cells carry different classifications, so neither clause of the
    definition applies to the key attribute.
    """
    if u.schema.name != v.schema.name:
        return False
    for uc, vc in zip(u.cells, v.cells):
        if uc == vc:
            continue
        if uc.value is not NULL and vc.value is NULL:
            continue
        return False
    return True


def strictly_subsumes(u: MLSTuple, v: MLSTuple) -> bool:
    """Subsumption between tuples with distinct cell contents."""
    return u.cells != v.cells and subsumes(u, v)


def minimize_by_subsumption(relation: MLSRelation) -> MLSRelation:
    """Drop every tuple strictly subsumed by another; collapse TC-duplicates.

    Among tuples with identical cells the one whose TC is maximal (when
    comparable) is kept; incomparable TCs are all kept.
    """
    lattice = relation.schema.lattice
    tuples = list(relation)
    survivors: list[MLSTuple] = []
    for t in tuples:
        dominated = False
        for other in tuples:
            if other is t:
                continue
            if strictly_subsumes(other, t):
                dominated = True
                break
            if other.cells == t.cells and other.tc != t.tc and lattice.lt(t.tc, other.tc):
                dominated = True
                break
        if not dominated:
            survivors.append(t)
    return MLSRelation(relation.schema, survivors)


def view_at(relation: MLSRelation, level: Level, apply_subsumption: bool = True) -> MLSRelation:
    """The Jajodia-Sandhu view of ``relation`` at clearance ``level``.

    This is what ``select * from mission`` returns to a ``level`` subject
    (figures 2 and 3 of the paper).  Set ``apply_subsumption=False`` to see
    the raw filtered instance before redundancy removal.
    """
    relation.schema.lattice.check_level(level)
    masked = []
    for t in relation:
        filtered = mask_tuple(t, level)
        if filtered is not None:
            masked.append(filtered)
    view = MLSRelation(relation.schema, masked)
    if apply_subsumption:
        view = minimize_by_subsumption(view)
    return view
