"""Multilevel relation schemes (Definition 2.1).

A scheme ``R(A1, C1, ..., An, Cn, TC)`` pairs every data attribute with a
classification attribute and adds the tuple-class attribute ``TC``.  The
classification attribute of ``Ai`` ranges over a sub-lattice ``[Li, Hi]``;
``TC`` ranges over ``[lub Li, lub Hi]``.

:class:`MLSchema` carries the attribute list, the apparent key (Section 2
discusses why the user key is only "apparent"), the security lattice the
classifications are drawn from, and the optional per-attribute ranges.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.errors import SchemaError
from repro.lattice import Level, SecurityLattice


class MLSchema:
    """Scheme of a multilevel relation.

    Parameters
    ----------
    name:
        Relation name (``mission`` in the running example).
    attributes:
        Ordered data attribute names ``A1..An``.
    key:
        The apparent key ``AK`` -- one or more attribute names.  The paper
        mostly assumes a single-attribute key; multi-attribute keys are the
        Section 7 extension and are fully supported here.
    lattice:
        The security lattice classifications are drawn from.
    ranges:
        Optional ``{attribute: (low, high)}`` classification ranges
        ``[Li, Hi]``; attributes without an entry may take any level.
    """

    __slots__ = ("name", "attributes", "key", "lattice", "ranges", "_positions")

    def __init__(
        self,
        name: str,
        attributes: Sequence[str],
        key: str | Sequence[str],
        lattice: SecurityLattice,
        ranges: Mapping[str, tuple[Level, Level]] | None = None,
    ):
        if not attributes:
            raise SchemaError(f"relation {name!r} needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"relation {name!r} has duplicate attribute names")
        key_attrs = (key,) if isinstance(key, str) else tuple(key)
        if not key_attrs:
            raise SchemaError(f"relation {name!r} needs an apparent key")
        for attr in key_attrs:
            if attr not in attributes:
                raise SchemaError(f"key attribute {attr!r} is not in the scheme of {name!r}")
        self.name = name
        self.attributes: tuple[str, ...] = tuple(attributes)
        self.key: tuple[str, ...] = key_attrs
        self.lattice = lattice
        self.ranges: dict[str, tuple[Level, Level]] = dict(ranges or {})
        for attr, (low, high) in self.ranges.items():
            if attr not in self.attributes:
                raise SchemaError(f"range given for unknown attribute {attr!r}")
            if not lattice.leq(low, high):
                raise SchemaError(f"empty classification range [{low}, {high}] for {attr!r}")
        self._positions = {attr: i for i, attr in enumerate(self.attributes)}

    # ------------------------------------------------------------------
    def position(self, attribute: str) -> int:
        """Index of ``attribute`` in the scheme (raises on unknown names)."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}"
            ) from None

    def is_key(self, attribute: str) -> bool:
        """True when ``attribute`` belongs to the apparent key ``AK``."""
        return attribute in self.key

    @property
    def non_key_attributes(self) -> tuple[str, ...]:
        """Data attributes outside the apparent key."""
        return tuple(a for a in self.attributes if a not in self.key)

    def classification_range(self, attribute: str) -> tuple[Level, Level] | None:
        """The declared ``[Li, Hi]`` range of ``attribute``, if any."""
        self.position(attribute)
        return self.ranges.get(attribute)

    def check_classification(self, attribute: str, level: Level) -> None:
        """Validate that ``level`` lies inside the attribute's range."""
        self.lattice.check_level(level)
        bounds = self.ranges.get(attribute)
        if bounds is None:
            return
        low, high = bounds
        if not (self.lattice.leq(low, level) and self.lattice.leq(level, high)):
            raise SchemaError(
                f"classification {level!r} of {self.name}.{attribute} is outside "
                f"its declared range [{low}, {high}]"
            )

    def column_names(self) -> tuple[str, ...]:
        """The full column list ``A1, C1, ..., An, Cn, TC`` of Definition 2.1."""
        columns: list[str] = []
        for attr in self.attributes:
            columns.append(attr)
            columns.append(f"C_{attr}")
        columns.append("TC")
        return tuple(columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MLSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
            and self.lattice == other.lattice
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))

    def __repr__(self) -> str:
        attrs = ", ".join(self.attributes)
        return f"MLSchema({self.name}({attrs}), key={'+'.join(self.key)})"


def project_columns(schema: MLSchema, attributes: Iterable[str]) -> tuple[str, ...]:
    """Validate and normalize an attribute subset in scheme order."""
    wanted = set(attributes)
    for attr in wanted:
        schema.position(attr)
    return tuple(a for a in schema.attributes if a in wanted)
