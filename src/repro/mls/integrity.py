"""MLS integrity properties (Definition 5.4, after Jajodia-Sandhu).

Three core properties every consistent multilevel relation must satisfy:

* **entity integrity** -- key values are non-null, the key is uniformly
  classified, and every non-key classification dominates ``C_AK``;
* **null integrity** -- nulls are classified at the key level, and no two
  distinct stored tuples subsume each other;
* **polyinstantiation integrity** -- the functional dependency
  ``AK, C_AK, Ci -> Ai`` holds.

Checks report *all* violations (not just the first) so databases can be
repaired; :func:`check_relation` aggregates them, and
:func:`assert_consistent` raises :class:`~repro.errors.IntegrityError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IntegrityError
from repro.mls.relation import MLSRelation
from repro.mls.tuples import MLSTuple, NULL
from repro.mls.views import subsumes


@dataclass(frozen=True)
class Violation:
    """One integrity violation: which property, where, and why."""

    property_name: str
    message: str
    tuples: tuple[MLSTuple, ...] = ()

    def __str__(self) -> str:
        return f"[{self.property_name}] {self.message}"


def check_entity_integrity(relation: MLSRelation) -> list[Violation]:
    """Key non-null + uniformly classified; non-key classes dominate C_AK."""
    lattice = relation.schema.lattice
    violations: list[Violation] = []
    for t in relation:
        key_cells = t.key_cells()
        if any(cell.value is NULL for cell in key_cells):
            violations.append(Violation(
                "entity", f"apparent key of {t!r} contains a null", (t,)))
            continue
        key_classes = {cell.cls for cell in key_cells}
        if len(key_classes) != 1:
            violations.append(Violation(
                "entity", f"apparent key of {t!r} is not uniformly classified "
                          f"({sorted(key_classes)})", (t,)))
            continue
        c_ak = t.key_classification()
        for attr in relation.schema.non_key_attributes:
            if not lattice.leq(c_ak, t.cls(attr)):
                violations.append(Violation(
                    "entity",
                    f"classification {t.cls(attr)!r} of {attr!r} in {t!r} does not "
                    f"dominate the key classification {c_ak!r}", (t,)))
    return violations


def check_null_integrity(relation: MLSRelation) -> list[Violation]:
    """Nulls classified at key level; no mutual (or any strict) subsumption."""
    violations: list[Violation] = []
    for t in relation:
        c_ak = t.key_cells()[0].cls
        for attr in relation.schema.attributes:
            cell = t.cell(attr)
            if cell.value is NULL and cell.cls != c_ak:
                violations.append(Violation(
                    "null",
                    f"null {attr!r} in {t!r} is classified {cell.cls!r}, "
                    f"not at the key level {c_ak!r}", (t,)))
    # Subsumption-freeness.  Tuple-level polyinstantiation (identical cells
    # under different TCs, e.g. t2/t6/t7 of Figure 1) is legal, so the check
    # applies between tuples stored at the same tuple class.
    tuples = list(relation)
    for i, u in enumerate(tuples):
        for v in tuples[i + 1:]:
            if u.tc != v.tc or u.cells == v.cells:
                continue
            if subsumes(u, v) or subsumes(v, u):
                violations.append(Violation(
                    "null",
                    "two distinct stored tuples at the same tuple class "
                    f"subsume each other ({u!r} / {v!r})", (u, v)))
    return violations


def check_polyinstantiation_integrity(relation: MLSRelation) -> list[Violation]:
    """The functional dependency ``AK, C_AK, Ci -> Ai`` for every attribute."""
    violations: list[Violation] = []
    witnesses: dict[tuple, MLSTuple] = {}
    for t in relation:
        key = t.key_values()
        c_ak = t.key_cells()[0].cls
        for attr in relation.schema.attributes:
            cell = t.cell(attr)
            fd_lhs = (key, c_ak, attr, cell.cls)
            prior = witnesses.get(fd_lhs)
            if prior is None:
                witnesses[fd_lhs] = t
            elif prior.cell(attr).value != cell.value:
                violations.append(Violation(
                    "polyinstantiation",
                    f"AK,C_AK,C_{attr} -> {attr} violated: key {key!r} at "
                    f"({c_ak!r}, {cell.cls!r}) maps to both "
                    f"{prior.cell(attr).value!r} and {cell.value!r}",
                    (prior, t)))
    return violations


def check_relation(relation: MLSRelation) -> list[Violation]:
    """All violations of all three core properties."""
    return (
        check_entity_integrity(relation)
        + check_null_integrity(relation)
        + check_polyinstantiation_integrity(relation)
    )


def is_consistent(relation: MLSRelation) -> bool:
    """True when the instance satisfies every core integrity property."""
    return not check_relation(relation)


def assert_consistent(relation: MLSRelation) -> None:
    """Raise :class:`IntegrityError` listing every violation, if any."""
    violations = check_relation(relation)
    if violations:
        summary = "; ".join(str(v) for v in violations)
        raise IntegrityError(
            f"relation {relation.schema.name!r} violates MLS integrity: {summary}"
        )
