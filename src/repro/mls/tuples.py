"""Multilevel tuples (Definition 2.2) and the distinguished null.

A multilevel tuple is ``(a1, c1, ..., an, cn, tc)``: every data value
carries its own classification, and ``TC`` records the access class the
tuple was inserted/updated at.

The paper's Definition 2.2 states ``tc = lub{ci}``, but its own Figure 1
violates that reading (t2/t6/t7 hold identical all-U data with TC = S/C/U:
tuple-level polyinstantiation).  We therefore treat ``TC`` as an explicit
attribute constrained by ``tc >= lub{ci}``, defaulting to the lub when not
given -- this reproduces every figure.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping

from repro.errors import SchemaError
from repro.lattice import Level
from repro.mls.schema import MLSchema


class _Null:
    """The distinguished null value (the paper's bottom symbol)."""

    _instance = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL"

    def __str__(self) -> str:
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_Null, ())


NULL = _Null()


def is_null(value: object) -> bool:
    """True when ``value`` is the distinguished MLS null."""
    return value is NULL


class Cell:
    """A classified data element: ``(value, classification)``."""

    __slots__ = ("value", "cls")

    def __init__(self, value: object, cls: Level):
        self.value = value
        self.cls = cls

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cell):
            return NotImplemented
        return self.value == other.value and self.cls == other.cls

    def __hash__(self) -> int:
        return hash((self.value, self.cls))

    def __repr__(self) -> str:
        return f"Cell({self.value!r}, {self.cls!r})"

    def __iter__(self) -> Iterator[object]:
        return iter((self.value, self.cls))

    @property
    def is_null(self) -> bool:
        return self.value is NULL


class MLSTuple:
    """An immutable multilevel tuple over a given scheme.

    Cells are stored in scheme attribute order.  Attribute access goes
    through the scheme, e.g. ``t.value("objective")`` / ``t.cls("objective")``.
    """

    __slots__ = ("schema", "cells", "tc")

    def __init__(self, schema: MLSchema, cells: Mapping[str, Cell] | list[Cell] | tuple[Cell, ...],
                 tc: Level | None = None):
        if isinstance(cells, Mapping):
            missing = [a for a in schema.attributes if a not in cells]
            if missing:
                raise SchemaError(f"tuple over {schema.name!r} is missing cells for {missing}")
            extra = [a for a in cells if a not in schema.attributes]
            if extra:
                raise SchemaError(f"tuple over {schema.name!r} has unknown attributes {extra}")
            ordered = tuple(cells[a] for a in schema.attributes)
        else:
            ordered = tuple(cells)
            if len(ordered) != len(schema.attributes):
                raise SchemaError(
                    f"tuple over {schema.name!r} needs {len(schema.attributes)} cells, "
                    f"got {len(ordered)}"
                )
        for attr, cell in zip(schema.attributes, ordered):
            schema.lattice.check_level(cell.cls)
        self.schema = schema
        self.cells: tuple[Cell, ...] = ordered
        lattice = schema.lattice
        if tc is None:
            tc = lattice.lub(*(cell.cls for cell in ordered))
        else:
            lattice.check_level(tc)
            offending = [
                cell.cls for cell in ordered if not lattice.leq(cell.cls, tc)
            ]
            if offending:
                raise SchemaError(
                    f"tuple class {tc!r} does not dominate cell classification(s) "
                    f"{sorted(set(offending))}"
                )
        self.tc: Level = tc

    # ------------------------------------------------------------------
    @classmethod
    def make(cls, schema: MLSchema, values: Mapping[str, object],
             classes: Mapping[str, Level] | Level, tc: Level | None = None) -> "MLSTuple":
        """Convenience constructor from separate value / classification maps.

        ``classes`` may be a single level (uniform classification, the
        normal result of an insert at that level) or a per-attribute map.
        """
        if isinstance(classes, str):
            class_map: Mapping[str, Level] = {a: classes for a in schema.attributes}
        else:
            class_map = classes
        cell_map = {
            attr: Cell(values.get(attr, NULL), class_map[attr])
            for attr in schema.attributes
        }
        return cls(schema, cell_map, tc=tc)

    def cell(self, attribute: str) -> Cell:
        """The classified cell of ``attribute``."""
        return self.cells[self.schema.position(attribute)]

    def value(self, attribute: str) -> object:
        """The data value of ``attribute`` (possibly :data:`NULL`)."""
        return self.cell(attribute).value

    def cls(self, attribute: str) -> Level:
        """The classification ``Ci`` of ``attribute``."""
        return self.cell(attribute).cls

    def key_cells(self) -> tuple[Cell, ...]:
        """The cells of the apparent key ``AK`` in key order."""
        return tuple(self.cell(a) for a in self.schema.key)

    def key_values(self) -> tuple[object, ...]:
        """The apparent-key values ``t[AK]``."""
        return tuple(cell.value for cell in self.key_cells())

    def key_classification(self) -> Level:
        """``C_AK`` -- entity integrity forces the key to be uniformly classified."""
        return self.key_cells()[0].cls

    def replace(self, cells: Mapping[str, Cell] | None = None, tc: Level | None = None) -> "MLSTuple":
        """A copy with some cells and/or the tuple class replaced."""
        new_cells = {attr: self.cell(attr) for attr in self.schema.attributes}
        if cells:
            new_cells.update(cells)
        return MLSTuple(self.schema, new_cells, tc=tc if tc is not None else self.tc)

    def as_row(self) -> tuple[object, ...]:
        """Flatten to ``(a1, c1, ..., an, cn, tc)`` -- Definition 2.2's shape."""
        row: list[object] = []
        for cell in self.cells:
            row.append(cell.value)
            row.append(cell.cls)
        row.append(self.tc)
        return tuple(row)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MLSTuple):
            return NotImplemented
        return (
            self.schema.name == other.schema.name
            and self.cells == other.cells
            and self.tc == other.tc
        )

    def __hash__(self) -> int:
        return hash((self.schema.name, self.cells, self.tc))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{attr}={cell.value!r}/{cell.cls}"
            for attr, cell in zip(self.schema.attributes, self.cells)
        )
        return f"<{self.schema.name}({parts}) TC={self.tc}>"
