"""Multilevel relation instances.

An :class:`MLSRelation` is a set of :class:`~repro.mls.tuples.MLSTuple`
over one scheme.  It is the object every other subsystem consumes: views
(:mod:`repro.mls.views`), the belief function (:mod:`repro.belief.beta`),
the update engine (:mod:`repro.mls.updates`) and the MultiLog bridge.

Insertion order is preserved (the figures list tuples in a fixed order);
duplicate tuples are collapsed.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.errors import SchemaError
from repro.lattice import Level
from repro.mls.schema import MLSchema
from repro.mls.tuples import Cell, MLSTuple, NULL


class MLSRelation:
    """A multilevel relation instance (scheme + tuples)."""

    __slots__ = ("schema", "_tuples", "_version", "__weakref__")

    def __init__(self, schema: MLSchema, tuples: Iterable[MLSTuple] = ()):
        self.schema = schema
        self._tuples: list[MLSTuple] = []
        self._version = 0
        seen: set[MLSTuple] = set()
        for t in tuples:
            self._check_tuple(t)
            if t not in seen:
                seen.add(t)
                self._tuples.append(t)

    @property
    def version(self) -> int:
        """Monotone counter bumped on every mutation; memo layers key
        cached belief views on it (see :mod:`repro.cache`)."""
        return self._version

    def _check_tuple(self, t: MLSTuple) -> None:
        if t.schema.name != self.schema.name or t.schema.attributes != self.schema.attributes:
            raise SchemaError(
                f"tuple over {t.schema.name!r} does not match relation {self.schema.name!r}"
            )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[MLSTuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: object) -> bool:
        return t in set(self._tuples)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MLSRelation):
            return NotImplemented
        return self.schema == other.schema and set(self._tuples) == set(other._tuples)

    def __hash__(self) -> int:
        return hash((self.schema, frozenset(self._tuples)))

    def __repr__(self) -> str:
        return f"MLSRelation({self.schema.name}, {len(self._tuples)} tuples)"

    @property
    def tuples(self) -> tuple[MLSTuple, ...]:
        return tuple(self._tuples)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add(self, t: MLSTuple) -> None:
        """Append a tuple (idempotent)."""
        self._check_tuple(t)
        if t not in set(self._tuples):
            self._tuples.append(t)
            self._version += 1

    def remove(self, t: MLSTuple) -> None:
        """Remove a tuple; raises ``ValueError`` when absent."""
        self._tuples.remove(t)
        self._version += 1

    def copy(self) -> "MLSRelation":
        return MLSRelation(self.schema, self._tuples)

    def row(self, values_and_classes: Iterable[tuple[object, Level]], tc: Level | None = None) -> MLSTuple:
        """Build and add a tuple from ``(value, class)`` pairs in scheme order.

        Returns the tuple so figure-building code can keep a handle on it.
        """
        cells = [Cell(value, cls) for value, cls in values_and_classes]
        t = MLSTuple(self.schema, cells, tc=tc)
        self.add(t)
        return t

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[MLSTuple], bool]) -> "MLSRelation":
        """Tuples satisfying ``predicate`` (classifications travel along)."""
        return MLSRelation(self.schema, (t for t in self._tuples if predicate(t)))

    def where(self, **equalities: object) -> "MLSRelation":
        """Shorthand selection on data-value equality, e.g. ``where(destination="mars")``."""
        for attr in equalities:
            self.schema.position(attr)

        def matches(t: MLSTuple) -> bool:
            return all(t.value(attr) == value for attr, value in equalities.items())

        return self.select(matches)

    def project_values(self, attributes: Iterable[str]) -> list[tuple[object, ...]]:
        """Distinct data-value rows over ``attributes`` (order-preserving)."""
        attrs = list(attributes)
        for attr in attrs:
            self.schema.position(attr)
        seen: set[tuple[object, ...]] = set()
        rows: list[tuple[object, ...]] = []
        for t in self._tuples:
            row = tuple(t.value(a) for a in attrs)
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return rows

    def with_key(self, *key_values: object) -> "MLSRelation":
        """Tuples whose apparent-key values equal ``key_values``."""
        if len(key_values) != len(self.schema.key):
            raise SchemaError(
                f"relation {self.schema.name!r} has a {len(self.schema.key)}-attribute key"
            )
        return self.select(lambda t: t.key_values() == tuple(key_values))

    def keys(self) -> list[tuple[object, ...]]:
        """Distinct apparent-key value combinations, in first-seen order."""
        seen: set[tuple[object, ...]] = set()
        result = []
        for t in self._tuples:
            k = t.key_values()
            if k not in seen:
                seen.add(k)
                result.append(k)
        return result

    def tuple_classes(self) -> set[Level]:
        """The set of TC levels present in the instance."""
        return {t.tc for t in self._tuples}

    def has_nulls(self) -> bool:
        """True when any stored cell is the distinguished null."""
        return any(cell.value is NULL for t in self._tuples for cell in t.cells)
