"""Surprise-story detection (the security leak the paper identifies).

Section 3: when a higher-level subject polyinstantiates a lower tuple but
leaves the key classification unchanged, and the lower tuple is later
deleted, the higher tuple's low-classified key keeps the tuple *visible*
below while its payload filters to nulls.  The low observer then learns
that (a) a higher-level tuple about this key exists and (b) she was being
given a cover story -- without learning the content.  The paper calls such
tuples **surprise stories** (t4 and t5 of Figure 1 at the C view).

A tuple ``t`` is a surprise story *at level l* when:

* it is visible at ``l`` (key classification <= l),
* at least one of its cells filters to null at ``l`` (so the observer sees
  the gap), and
* no other visible tuple subsumes the filtered remnant (otherwise the gap
  is papered over and nothing leaks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import MLSTuple, NULL
from repro.mls.views import mask_tuple, strictly_subsumes


@dataclass(frozen=True)
class SurpriseStory:
    """A detected leak: the stored tuple, the level it leaks at, the gaps."""

    stored: MLSTuple
    level: Level
    leaked_attributes: tuple[str, ...]

    def __str__(self) -> str:
        attrs = ", ".join(self.leaked_attributes)
        return (
            f"surprise story at level {self.level!r}: key "
            f"{self.stored.key_values()!r} reveals hidden attribute(s) {attrs}"
        )


def surprise_stories_at(relation: MLSRelation, level: Level) -> list[SurpriseStory]:
    """All surprise stories ``relation`` leaks to a subject cleared at ``level``."""
    lattice = relation.schema.lattice
    lattice.check_level(level)
    masked_pairs: list[tuple[MLSTuple, MLSTuple]] = []
    for stored in relation:
        filtered = mask_tuple(stored, level)
        if filtered is not None:
            masked_pairs.append((stored, filtered))
    stories: list[SurpriseStory] = []
    for stored, filtered in masked_pairs:
        nulled = tuple(
            attr for attr in relation.schema.attributes
            if filtered.value(attr) is NULL and stored.value(attr) is not NULL
        )
        if not nulled:
            continue
        covered = any(
            strictly_subsumes(other_filtered, filtered)
            for other_stored, other_filtered in masked_pairs
            if other_stored is not stored
        )
        if not covered:
            stories.append(SurpriseStory(stored, level, nulled))
    return stories


def surprise_stories(relation: MLSRelation) -> dict[Level, list[SurpriseStory]]:
    """Surprise stories at every level of the lattice (only non-empty entries)."""
    result: dict[Level, list[SurpriseStory]] = {}
    for level in sorted(relation.schema.lattice.levels):
        found = surprise_stories_at(relation, level)
        if found:
            result[level] = found
    return result


def is_surprise_free(relation: MLSRelation) -> bool:
    """True when no level of the lattice observes a surprise story."""
    return not surprise_stories(relation)
