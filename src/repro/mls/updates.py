"""Polyinstantiating update engine (Section 3's "series of updates").

Subjects interact with a multilevel relation only through a
:class:`SessionCursor` bound to their clearance; the cursor enforces
Bell-LaPadula:

* **insert at c** -- every cell classified ``c``, TC = ``c``; rejected when
  a tuple with the same apparent key already exists *at* ``c``.
* **update at c** -- targets tuples visible at ``c`` (key class <= c).
  When the target lives at exactly ``c`` and only ``c``-classified cells
  change, the update happens in place.  Otherwise *required
  polyinstantiation* kicks in: the stored tuple is left untouched (lower
  subjects must not notice) and a new tuple is created that keeps the key
  cell verbatim, carries the updated cells at class ``c``, copies the rest,
  and gets TC = ``c``.
* **delete at c** -- removes tuples with a matching key stored at exactly
  ``c`` (the *-property forbids destroying higher or lower data).

Replaying insert/update/delete with these rules generates the t4/t5
"surprise stories" of Figure 1 -- see
:func:`repro.workloads.mission.mission_via_updates`.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import AccessDeniedError, IntegrityError
from repro.lattice import Level
from repro.mls.relation import MLSRelation
from repro.mls.tuples import Cell, MLSTuple
from repro.mls.views import view_at


class SessionCursor:
    """A subject's handle on a relation, bound to one clearance level."""

    def __init__(self, relation: MLSRelation, clearance: Level):
        relation.schema.lattice.check_level(clearance)
        self.relation = relation
        self.clearance = clearance

    # ------------------------------------------------------------------
    def read(self, apply_subsumption: bool = True) -> MLSRelation:
        """``select *`` under the simple security property (Definition 2.3)."""
        return view_at(self.relation, self.clearance, apply_subsumption=apply_subsumption)

    # ------------------------------------------------------------------
    def insert(self, values: Mapping[str, object]) -> MLSTuple:
        """Insert a tuple wholly classified at the session clearance."""
        schema = self.relation.schema
        missing = [a for a in schema.key if a not in values]
        if missing:
            raise IntegrityError(f"insert must supply key attribute(s) {missing}")
        new = MLSTuple.make(schema, dict(values), self.clearance, tc=self.clearance)
        # The key is taken at this classification when ANY stored tuple
        # carries it with C_AK = clearance -- including higher
        # polyinstantiated tuples that inherited the (now possibly
        # deleted) low original.  Allowing the insert would let fresh
        # low cells contradict the stale inherited ones and break the FD
        # AK, C_AK, Ci -> Ai.
        for existing in self.relation:
            if (existing.key_values() == new.key_values()
                    and existing.key_classification() == self.clearance):
                raise IntegrityError(
                    f"key {new.key_values()!r} already exists with classification "
                    f"{self.clearance!r} (tuple class {existing.tc!r})"
                )
        self.relation.add(new)
        return new

    # ------------------------------------------------------------------
    def update(self, key: Mapping[str, object], changes: Mapping[str, object],
               key_classification: Level | None = None) -> list[MLSTuple]:
        """Update visible tuples matching ``key``; polyinstantiate as needed.

        ``key_classification`` restricts the target to tuples whose key is
        classified exactly so (needed when the same key value is
        polyinstantiated across levels, as with the two Phantom tuples).
        Returns the tuples now carrying the update.
        """
        schema = self.relation.schema
        lattice = schema.lattice
        for attr in changes:
            if schema.is_key(attr):
                raise IntegrityError(
                    f"cannot update key attribute {attr!r}; delete and reinsert instead"
                )
            schema.position(attr)
        targets = [
            t for t in self.relation
            if all(t.value(a) == v for a, v in key.items())
            and lattice.leq(t.key_classification(), self.clearance)
            and lattice.leq(t.tc, self.clearance)
            and (key_classification is None or t.key_classification() == key_classification)
        ]
        if not targets:
            raise IntegrityError(
                f"no tuple with key {dict(key)!r} is visible at {self.clearance!r}"
            )
        results: list[MLSTuple] = []
        for target in targets:
            results.append(self._apply_update(target, changes))
        return results

    def _apply_update(self, target: MLSTuple, changes: Mapping[str, object]) -> MLSTuple:
        clearance = self.clearance
        in_place = target.tc == clearance and all(
            target.cls(attr) == clearance for attr in changes
        )
        new_cells = {attr: Cell(value, clearance) for attr, value in changes.items()}
        if in_place:
            updated = target.replace(cells=new_cells, tc=clearance)
            self.relation.remove(target)
            self.relation.add(updated)
            # Element semantics: higher polyinstantiated tuples that
            # inherited this tuple's clearance-classified cells reference
            # the same data elements, so the change propagates to them
            # (otherwise the FD AK,C_AK,Ci -> Ai breaks between the fresh
            # low cell and the stale inherited copy).
            for other in list(self.relation):
                if other is updated or other.key_values() != target.key_values():
                    continue
                if other.key_classification() != target.key_classification():
                    continue
                shared = {
                    attr: cell for attr, cell in new_cells.items()
                    if other.cls(attr) == clearance and other.cell(attr) != cell
                }
                if shared:
                    self.relation.remove(other)
                    self.relation.add(other.replace(cells=shared))
            return updated
        # Required polyinstantiation: the lower tuple stays; a new tuple at
        # the subject's level carries the change, keeping the key cell (and
        # hence the lower key classification) verbatim.
        poly = target.replace(cells=new_cells, tc=clearance)
        if poly == target:
            return target
        self.relation.add(poly)
        return poly

    # ------------------------------------------------------------------
    def delete(self, key: Mapping[str, object]) -> list[MLSTuple]:
        """Delete tuples matching ``key`` stored at exactly this clearance."""
        victims = [
            t for t in self.relation
            if all(t.value(a) == v for a, v in key.items()) and t.tc == self.clearance
        ]
        if not victims:
            raise AccessDeniedError(
                f"no tuple with key {dict(key)!r} is stored at level {self.clearance!r}"
            )
        for t in victims:
            self.relation.remove(t)
        return victims
