"""Evaluation budgets: hard caps on rows, rounds and wall-clock time.

An :class:`EvaluationBudget` is immutable configuration -- "at most this
many derived rows, this many fixpoint rounds, this many seconds".  A
:class:`BudgetMeter` is the runtime spend for one evaluation: the engine
charges rows and rounds against it at fixpoint-round and rule-firing
boundaries, and any overrun raises a structured
:class:`~repro.errors.BudgetExceededError` whose ``reason`` names the
exhausted limit and whose ``spent`` dict records how far evaluation got.
Higher layers (``evaluate``, ``MultiLogSession.ask``) attach the partial
:class:`~repro.obs.metrics.EngineMetrics` to the error before re-raising,
so callers degrade gracefully instead of hanging on adversarial programs.

Granularity: limits are checked between rule firings and at round
boundaries, not inside a single join loop -- a one-rule cross-product
explosion is interrupted only once its firing returns.  Round counts are
cumulative across strata (a runaway transitive closure lives in a single
stratum anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.errors import BudgetExceededError


@dataclass(frozen=True)
class EvaluationBudget:
    """Limits for one evaluation; ``None`` disables a limit."""

    #: Cap on rows derived by rules (extensional facts are free).
    max_derived_rows: int | None = None
    #: Cap on fixpoint rounds, cumulative across strata.
    max_rounds: int | None = None
    #: Wall-clock cap in seconds, measured from the meter's creation.
    timeout_s: float | None = None
    #: Cooperative cancellation probe, polled at round boundaries and
    #: row charges.  Returning ``True`` aborts the evaluation with
    #: ``reason="cancelled"`` -- the serving layer points this at a
    #: per-request event set when the client disconnects mid-ask.
    #: Excluded from equality/hash so budgets differing only in their
    #: cancel hook still compare equal (and memo keys stay stable).
    cancelled: Callable[[], bool] | None = field(
        default=None, compare=False, hash=False)

    def meter(self) -> "BudgetMeter":
        """A fresh runtime meter; starts the wall clock now."""
        return BudgetMeter(self)


class BudgetMeter:
    """Spend tracking for one evaluation against a budget."""

    __slots__ = ("budget", "started", "rows", "rounds")

    def __init__(self, budget: EvaluationBudget):
        self.budget = budget
        self.started = perf_counter()
        self.rows = 0
        self.rounds = 0

    def spent(self) -> dict[str, object]:
        """How much of the budget evaluation has consumed so far."""
        return {
            "rows": self.rows,
            "rounds": self.rounds,
            "elapsed_s": perf_counter() - self.started,
        }

    def _fail(self, reason: str, message: str) -> None:
        raise BudgetExceededError(message, reason=reason, spent=self.spent())

    def check_cancelled(self, scope: str = "") -> None:
        """Fail when the budget's cancellation probe has tripped."""
        probe = self.budget.cancelled
        if probe is not None and probe():
            where = f" in {scope}" if scope else ""
            self._fail("cancelled", f"evaluation cancelled{where} "
                                    f"(caller abandoned the request)")

    def charge_rows(self, n: int, scope: str = "") -> None:
        """Account ``n`` freshly derived rows; fail past the row cap."""
        self.rows += n
        cap = self.budget.max_derived_rows
        if cap is not None and self.rows > cap:
            where = f" in {scope}" if scope else ""
            self._fail("rows", f"derived-row budget exceeded{where}: "
                               f"{self.rows} rows > cap {cap}")
        self.check_cancelled(scope)

    def begin_round(self, scope: str = "") -> None:
        """Enter one fixpoint round: bumps the count, checks rounds + clock."""
        self.rounds += 1
        cap = self.budget.max_rounds
        if cap is not None and self.rounds > cap:
            where = f" in {scope}" if scope else ""
            self._fail("rounds", f"fixpoint-round budget exceeded{where}: "
                                 f"round {self.rounds} > cap {cap}")
        self.check_cancelled(scope)
        self.check_time(scope)

    def check_time(self, scope: str = "") -> None:
        """Fail when the wall-clock limit has passed."""
        limit = self.budget.timeout_s
        if limit is None:
            return
        elapsed = perf_counter() - self.started
        if elapsed > limit:
            where = f" in {scope}" if scope else ""
            self._fail("timeout", f"evaluation timed out{where}: "
                                  f"{elapsed:.3f}s > {limit:.3f}s")
