"""Nestable evaluation spans: the tracing half of :mod:`repro.obs`.

A :class:`Span` is one timed node of a trace tree -- named after the
evaluation phase it covers (``parse``, ``stratify``, ``stratum[i]``,
``rule-fire``, ``beta``, ``tau-translate``, ``query``) and carrying
free-form attributes such as row counts and delta sizes.  Spans are their
own context managers; entering one pushes it onto the recorder's stack so
spans opened inside nest as children.

Two recorders share the same duck type:

* :class:`TraceRecorder` -- collects a forest of spans, dumpable as a
  tree of dicts (:meth:`TraceRecorder.to_dicts`), JSON
  (:meth:`TraceRecorder.to_json`) or indented text
  (:meth:`TraceRecorder.pretty`).
* :class:`NullRecorder` -- the disabled path.  Its :meth:`~NullRecorder.
  span` hands back one shared no-op span, so instrumented code pays a
  single method call and **zero allocations** when tracing is off.

Instrumented code never branches on which recorder it holds; it calls
``recorder.span(...)`` unconditionally and the type does the rest.
"""

from __future__ import annotations

import json
import os
import random
from time import perf_counter

#: Attribute names that count "rows processed" by a span, probed in this
#: order by the throughput column of :meth:`Span.pretty`.
_ROW_ATTRS = ("delta", "rows", "tuples", "facts", "answers")


# ----------------------------------------------------------------------
# W3C-style trace context (the serving layer's request correlation ids)
# ----------------------------------------------------------------------

#: Correlation ids need uniqueness, not secrecy: one getrandom() syscall
#: seeds the generator and every id after that is a pure user-space draw
#: (os.urandom per id would put a syscall on the serving hot path --
#: measured at ~60us per call on audited kernels).  Reseeded in forked
#: children so parent and child never mint the same id stream.
_ID_RNG = random.Random(os.urandom(16))

if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(
        after_in_child=lambda: _ID_RNG.seed(os.urandom(16)))


def new_trace_id() -> str:
    """A fresh non-zero 128-bit trace id as 32 lowercase hex characters."""
    value = 0
    while not value:
        value = _ID_RNG.getrandbits(128)
    return f"{value:032x}"


def new_span_id() -> str:
    """A fresh non-zero 64-bit span id as 16 lowercase hex characters."""
    value = 0
    while not value:
        value = _ID_RNG.getrandbits(64)
    return f"{value:016x}"


def format_traceparent(trace_id: str, span_id: str,
                       sampled: bool = True) -> str:
    """A W3C ``traceparent`` header value: ``00-<trace>-<span>-<flags>``."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def parse_traceparent(text: str) -> tuple[str, str, bool]:
    """``(trace_id, parent_span_id, sampled)`` from a ``traceparent``.

    Accepts the W3C shape ``version-traceid-spanid-flags`` (lowercase
    hex, version ``ff`` and all-zero ids rejected); raises
    :class:`ValueError` on anything else so protocol layers can map the
    failure to a ``bad-request``.
    """
    parts = text.split("-")
    if len(parts) != 4:
        raise ValueError(f"traceparent must have 4 '-'-separated fields, "
                         f"got {len(parts)}: {text!r}")
    version, trace_id, span_id, flags = parts
    for name, value, width in (("version", version, 2),
                               ("trace id", trace_id, 32),
                               ("span id", span_id, 16),
                               ("flags", flags, 2)):
        if len(value) != width or any(c not in "0123456789abcdef"
                                      for c in value):
            raise ValueError(f"traceparent {name} must be {width} lowercase "
                             f"hex characters, got {value!r}")
    if version == "ff":
        raise ValueError("traceparent version 'ff' is forbidden")
    if set(trace_id) == {"0"} or set(span_id) == {"0"}:
        raise ValueError("traceparent ids must not be all zeros")
    return trace_id, span_id, bool(int(flags, 16) & 0x01)


class Span:
    """One timed node of a trace tree; also its own context manager."""

    __slots__ = ("name", "attrs", "children", "started", "elapsed_s", "_recorder")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: dict):
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.children: list["Span"] = []
        self.started = 0.0
        self.elapsed_s = 0.0

    def set(self, **attrs) -> "Span":
        """Attach or update attributes (row counts, delta sizes, ...)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._recorder._push(self)
        self.started = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_s = perf_counter() - self.started
        if exc_type is not None:
            # The span is closing because an exception (budget overrun,
            # injected fault, engine error) is unwinding through it: keep
            # the tree complete and renderable, but mark every span that
            # was open at abort time so last_trace() shows where the
            # evaluation died.
            self.attrs.setdefault("aborted", True)
        self._recorder._pop(self)
        return False

    # -- introspection ---------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "elapsed_s": round(self.elapsed_s, 6)}
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def find(self, name: str) -> list["Span"]:
        """This span and every descendant named ``name``."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find(name))
        return out

    def row_count(self) -> int | None:
        """The span's row-ish workload, if any attribute recorded one."""
        for key in _ROW_ATTRS:
            value = self.attrs.get(key)
            if isinstance(value, int):
                return value
        return None

    def pretty(self, indent: int = 0, parent_elapsed: float | None = None) -> str:
        pad = "  " * indent
        columns = [f"{pad}{self.name}", f"{self.elapsed_s * 1e3:.3f}ms"]
        if parent_elapsed is not None and parent_elapsed > 0.0:
            columns.append(f"{self.elapsed_s / parent_elapsed * 100.0:.1f}%")
        rows = self.row_count()
        if rows is not None and self.elapsed_s > 0.0:
            columns.append(f"{rows / self.elapsed_s:,.0f} rows/s")
        if self.attrs:
            columns.append(" ".join(f"{k}={v}" for k, v in sorted(self.attrs.items())))
        lines = ["  ".join(columns)]
        lines.extend(child.pretty(indent + 1, self.elapsed_s) for child in self.children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.elapsed_s:.6f}s, {len(self.children)} children)"


class TraceRecorder:
    """Collects spans into a forest; create one per traced evaluation.

    ``histograms`` (a :class:`~repro.obs.histogram.HistogramSet`) and
    ``sink`` (a :class:`~repro.obs.export.TelemetrySink`) both hook the
    span-close path: a span's ``elapsed_s`` is final before ``_pop``
    runs, so the histogram observes the true duration and the sink
    streams only completed trees.  The sink receives each **root** span
    as it closes, letting a long-lived session stream spans to a file
    instead of accumulating every forest in memory.

    ``parent`` grafts this recorder's root spans under a :class:`Span`
    owned by *another* recorder: each root is appended to
    ``parent.children`` as it closes (while still landing in
    :attr:`roots`, so per-recorder introspection keeps working).  The
    serving layer uses this to hang an engine evaluation's span forest
    under the request span that caused it, even though the engine runs
    on a worker thread with its own per-ask recorder.  The append is a
    single list mutation (atomic under the GIL) and the parent span is
    still open when it happens, so the grafted tree renders connected.
    """

    __slots__ = ("roots", "_stack", "histograms", "sink", "parent")

    enabled = True

    def __init__(self, histograms=None, sink=None,
                 parent: Span | None = None) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self.histograms = histograms
        self.sink = sink
        self.parent = parent

    def span(self, name: str, **attrs) -> Span:
        """A new span; use as ``with recorder.span("stratum[0]") as sp:``."""
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding through several open spans at once.
        while self._stack:
            if self._stack.pop() is span:
                break
        if self.histograms is not None:
            self.histograms.observe_span(span.name, span.attrs, span.elapsed_s)
        if not self._stack:
            if self.parent is not None:
                self.parent.children.append(span)
            if self.sink is not None:
                self.sink.write_span(span)

    # -- introspection ---------------------------------------------------
    def clear(self) -> None:
        self.roots = []
        self._stack = []

    def find(self, name: str) -> list[Span]:
        out: list[Span] = []
        for root in self.roots:
            out.extend(root.find(name))
        return out

    def to_dicts(self) -> list[dict]:
        return [root.to_dict() for root in self.roots]

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent, default=repr)

    def pretty(self) -> str:
        return "\n".join(root.pretty() for root in self.roots)


class _NullSpan:
    """The shared no-op span handed out by :class:`NullRecorder`."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Singleton no-op span; also useful to stand in for a Span when a caller
#: caps how many real spans it records (see the engine's round spans).
NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder for the disabled path: every span is :data:`NULL_SPAN`."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def clear(self) -> None:
        pass

    def find(self, name: str) -> list[Span]:
        return []

    def to_dicts(self) -> list[dict]:
        return []

    def to_json(self, indent: int | None = None) -> str:
        return "[]"

    def pretty(self) -> str:
        return ""


NULL_RECORDER = NullRecorder()
