"""Metric counters and the :class:`EngineMetrics` snapshot.

A :class:`MetricsCollector` is the mutable side: the engines increment
per-rule firing counts, per-scope fixpoint round counts and join-probe
totals into it as they run.  It is cheap enough to keep attached to a
long-lived session -- counters are cumulative across queries, and
:meth:`MetricsCollector.snapshot` freezes the current state (plus the
per-layer :func:`repro.cache.cache_stats` and an optional span forest)
into an immutable :class:`EngineMetrics`.

:data:`NULL_METRICS` is the disabled path: a shared collector whose
methods do nothing, so instrumented code calls it unconditionally and
pays one no-op method call per rule firing when metrics are off.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field

from repro.cache import cache_stats


@dataclass(frozen=True)
class CacheSnapshot:
    """Frozen hit/miss/invalidation counters for one memo layer."""

    hits: int
    misses: int
    invalidations: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class EngineMetrics:
    """One immutable snapshot of everything the engines counted.

    ``rule_firings`` maps a rule's source form to how many times it fired
    (compiled/semi-naive: calls of its join plan; operational: solutions
    of its body); ``rows_derived`` counts the rows those firings emitted
    *before* deduplication against the store.  ``rounds`` maps a fixpoint
    scope (``stratum[i]``, ``operational-inner``, ...) to its round
    count.  ``spans`` is the span forest of the most recent traced
    evaluation as dicts (see :mod:`repro.obs.trace`).
    """

    asks: int = 0
    rule_firings: dict[str, int] = field(default_factory=dict)
    rows_derived: dict[str, int] = field(default_factory=dict)
    rounds: dict[str, int] = field(default_factory=dict)
    join_probes: int = 0
    candidate_calls: int = 0
    #: batch operators of the columnar backend's vectorized strategy:
    #: whole-delta hash-join probes, build-side hash-table builds (or
    #: incremental extensions), and rows dropped as duplicates by bulk
    #: inserts.  Zero on the row-at-a-time paths.
    batch_probes: int = 0
    batch_builds: int = 0
    batch_dedup_rows: int = 0
    cache: dict[str, CacheSnapshot] = field(default_factory=dict)
    spans: tuple[dict, ...] = ()
    budget_exceeded: str | None = None
    #: set by the resilience layer when this ask was served degraded:
    #: ``"<rung>:<reason>"`` (e.g. ``"seminaive:fallback"``,
    #: ``"compiled:budget-rows"``); ``None`` on the normal path.
    degraded: str | None = None
    #: cumulative resilience counters: transient retries spent, ladder
    #: fallbacks taken, and asks served degraded, across the session.
    retries: int = 0
    fallbacks: int = 0
    degraded_asks: int = 0
    #: which attempt produced this snapshot (a session-wide ordinal that,
    #: unlike ``asks``, also counts aborted retry-ladder attempts) and the
    #: ladder rung that served it (``None`` outside the executor).
    attempt: int | None = None
    rung: str | None = None

    @property
    def total_firings(self) -> int:
        return sum(self.rule_firings.values())

    @property
    def total_rows_derived(self) -> int:
        return sum(self.rows_derived.values())

    def to_dict(self) -> dict:
        return {
            "asks": self.asks,
            "rule_firings": dict(self.rule_firings),
            "rows_derived": dict(self.rows_derived),
            "rounds": dict(self.rounds),
            "join_probes": self.join_probes,
            "candidate_calls": self.candidate_calls,
            "batch_probes": self.batch_probes,
            "batch_builds": self.batch_builds,
            "batch_dedup_rows": self.batch_dedup_rows,
            "cache": {name: snap.to_dict() for name, snap in self.cache.items()},
            "spans": list(self.spans),
            "budget_exceeded": self.budget_exceeded,
            "degraded": self.degraded,
            "retries": self.retries,
            "fallbacks": self.fallbacks,
            "degraded_asks": self.degraded_asks,
            "attempt": self.attempt,
            "rung": self.rung,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def summary(self) -> str:
        """A short human-readable digest (the CLI's ``:stats`` output)."""
        lines = [
            f"asks: {self.asks}",
            f"rule firings: {self.total_firings} "
            f"({len(self.rule_firings)} distinct rules, "
            f"{self.total_rows_derived} rows pre-dedup)",
            f"join probes: {self.join_probes}  "
            f"candidate scans: {self.candidate_calls}",
        ]
        if self.batch_probes or self.batch_builds or self.batch_dedup_rows:
            lines.append(f"batch ops: {self.batch_probes} probes / "
                         f"{self.batch_builds} builds / "
                         f"{self.batch_dedup_rows} duplicate rows dropped")
        if self.rounds:
            rounds = ", ".join(f"{k}={v}" for k, v in sorted(self.rounds.items()))
            lines.append(f"fixpoint rounds: {rounds}")
        for name, snap in sorted(self.cache.items()):
            lines.append(
                f"cache {name}: {snap.hits} hits / {snap.misses} misses "
                f"(rate {snap.hit_rate:.2f}, {snap.invalidations} invalidations)"
            )
        if self.budget_exceeded:
            lines.append(f"budget exceeded: {self.budget_exceeded}")
        if self.degraded:
            lines.append(f"degraded: {self.degraded}")
        if self.retries or self.fallbacks or self.degraded_asks:
            lines.append(f"resilience: {self.retries} retries, "
                         f"{self.fallbacks} fallbacks, "
                         f"{self.degraded_asks} degraded asks")
        if self.rung is not None:
            lines.append(f"served by: attempt {self.attempt} on rung {self.rung}")
        top = sorted(self.rule_firings.items(), key=lambda kv: -kv[1])[:5]
        for label, count in top:
            shown = label if len(label) <= 72 else label[:69] + "..."
            lines.append(f"  {count:>6}x  {shown}")
        return "\n".join(lines)


class MetricsCollector:
    """Mutable counters the engines write into (cumulative across asks).

    "Cumulative" means across *served* asks: the resilience executor
    brackets each retry-ladder attempt with :meth:`mark` /
    :meth:`rollback` so an aborted attempt's firings, rounds and probes
    do not merge into the counters the serving attempt reports.  The
    ``attempts`` ordinal and the resilience counters (``retries`` /
    ``fallbacks`` / ``degraded_asks``) deliberately survive rollback --
    they record that the attempts happened.
    """

    __slots__ = ("rule_firings", "rows_derived", "rounds",
                 "join_probes", "candidate_calls",
                 "batch_probes", "batch_builds", "batch_dedup_rows", "asks",
                 "attempts", "retries", "fallbacks", "degraded_asks")

    enabled = True

    def __init__(self) -> None:
        self.rule_firings: Counter = Counter()
        self.rows_derived: Counter = Counter()
        self.rounds: dict[str, int] = {}
        self.join_probes = 0
        self.candidate_calls = 0
        self.batch_probes = 0
        self.batch_builds = 0
        self.batch_dedup_rows = 0
        self.asks = 0
        self.attempts = 0
        self.retries = 0
        self.fallbacks = 0
        self.degraded_asks = 0

    # -- engine-facing increments ---------------------------------------
    def rule_fired(self, label: str, rows: int) -> None:
        self.rule_firings[label] += 1
        self.rows_derived[label] += rows

    def record_rounds(self, scope: str, rounds: int) -> None:
        self.rounds[scope] = self.rounds.get(scope, 0) + rounds

    def add_probes(self, n: int) -> None:
        self.join_probes += n

    def add_candidate_calls(self, n: int) -> None:
        self.candidate_calls += n

    def add_batch_ops(self, probes: int, builds: int, dedup_rows: int) -> None:
        self.batch_probes += probes
        self.batch_builds += builds
        self.batch_dedup_rows += dedup_rows

    def count_ask(self) -> None:
        self.asks += 1
        self.attempts += 1

    def count_retry(self) -> None:
        self.retries += 1

    def count_fallback(self) -> None:
        self.fallbacks += 1

    def count_degraded(self) -> None:
        self.degraded_asks += 1

    # -- attempt bracketing (resilience executor) ------------------------
    def mark(self) -> tuple:
        """An opaque restore point taken before a retry-ladder attempt."""
        return (dict(self.rule_firings), dict(self.rows_derived),
                dict(self.rounds), self.join_probes, self.candidate_calls,
                self.asks, self.batch_probes, self.batch_builds,
                self.batch_dedup_rows)

    def rollback(self, state: tuple) -> None:
        """Restore the engine counters to ``state`` (aborted attempt).

        ``attempts`` and the resilience counters are *not* restored: the
        aborted attempt still happened and should still be countable.
        """
        (firings, rows, rounds, probes, candidates, asks,
         batch_probes, batch_builds, batch_dedup) = state
        self.rule_firings = Counter(firings)
        self.rows_derived = Counter(rows)
        self.rounds = dict(rounds)
        self.join_probes = probes
        self.candidate_calls = candidates
        self.asks = asks
        self.batch_probes = batch_probes
        self.batch_builds = batch_builds
        self.batch_dedup_rows = batch_dedup

    # -- snapshotting ----------------------------------------------------
    def snapshot(self, recorder=None, budget_exceeded: str | None = None,
                 rung: str | None = None) -> EngineMetrics:
        """Freeze the counters (plus cache stats and a span forest)."""
        spans: tuple[dict, ...] = ()
        if recorder is not None and recorder.enabled:
            spans = tuple(recorder.to_dicts())
        cache = {
            name: CacheSnapshot(stats.hits, stats.misses, stats.invalidations)
            for name, stats in cache_stats().items()
        }
        return EngineMetrics(
            asks=self.asks,
            rule_firings=dict(self.rule_firings),
            rows_derived=dict(self.rows_derived),
            rounds=dict(self.rounds),
            join_probes=self.join_probes,
            candidate_calls=self.candidate_calls,
            batch_probes=self.batch_probes,
            batch_builds=self.batch_builds,
            batch_dedup_rows=self.batch_dedup_rows,
            cache=cache,
            spans=spans,
            budget_exceeded=budget_exceeded,
            retries=self.retries,
            fallbacks=self.fallbacks,
            degraded_asks=self.degraded_asks,
            attempt=self.attempts if self.attempts else None,
            rung=rung,
        )

    def reset(self) -> None:
        self.rule_firings.clear()
        self.rows_derived.clear()
        self.rounds.clear()
        self.join_probes = 0
        self.candidate_calls = 0
        self.batch_probes = 0
        self.batch_builds = 0
        self.batch_dedup_rows = 0
        self.asks = 0
        self.attempts = 0
        self.retries = 0
        self.fallbacks = 0
        self.degraded_asks = 0


class NullMetrics:
    """The disabled path: every increment is a no-op."""

    __slots__ = ()

    enabled = False

    def rule_fired(self, label: str, rows: int) -> None:
        pass

    def record_rounds(self, scope: str, rounds: int) -> None:
        pass

    def add_probes(self, n: int) -> None:
        pass

    def add_candidate_calls(self, n: int) -> None:
        pass

    def add_batch_ops(self, probes: int, builds: int, dedup_rows: int) -> None:
        pass

    def count_ask(self) -> None:
        pass

    def count_retry(self) -> None:
        pass

    def count_fallback(self) -> None:
        pass

    def count_degraded(self) -> None:
        pass

    def mark(self) -> tuple:
        return ()

    def rollback(self, state: tuple) -> None:
        pass


NULL_METRICS = NullMetrics()
