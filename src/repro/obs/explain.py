"""EXPLAIN-style dumps of compiled join plans.

Renders what the compiled strategy will actually execute: per stratum,
per rule, the literal order chosen by ``greedy_join_order`` +
``reorder_body`` and the access path of every literal -- which composite
index it probes (and on which positions), or that it falls back to a
full scan, inlined guard or anti-join.  The data comes straight from
:attr:`repro.datalog.plan.CompiledRule.access_paths`, so the dump cannot
drift from the generated code.

Engine imports are deferred into the functions: the engine itself imports
:mod:`repro.obs` for tracing, and importing it back at module level would
be circular.
"""

from __future__ import annotations


def _render_path(step: dict) -> str:
    access = step["access"]
    if access == "index-probe":
        positions = ",".join(str(p) for p in step["positions"])
        source = step["source"]
        return f"index probe on positions ({positions}) of {source} (row loop)"
    if access == "full-scan":
        return f"full scan of {step['source']} (row loop)"
    if access == "batch-probe":
        positions = ",".join(str(p) for p in step.get("positions", ()))
        return f"batch hash join on positions ({positions}) of {step['source']}"
    if access == "batch-scan":
        return f"batch scan of {step['source']} (column batch)"
    if access == "anti-join":
        return "anti-join (negated, contains() check)"
    return "inlined guard (built-in)"


def explain_rule(rule, stratum_predicates: frozenset[str] = frozenset(),
                 backend: str = "dict") -> str:
    """The access-path listing for one rule (body already ordered).

    ``backend="columnar"`` explains the batch pipeline the ``vectorized``
    strategy would run (``batch hash join`` operators); the default
    explains the row-compiled plan (``row loop`` probes).
    """
    from repro.datalog.plan import compile_batch_rule, compile_rule

    compiler = compile_batch_rule if backend == "columnar" else compile_rule
    plan = compiler(rule, set(stratum_predicates))
    lines = [f"plan for {plan.rule!r}"]
    for index, step in enumerate(plan.access_paths, start=1):
        lines.append(f"  {index}. {step['literal']}  --  {_render_path(step)}")
    if plan.delta_variants:
        deltas = ", ".join(variant[0] for variant in plan.delta_variants)
        lines.append(f"  delta-specialized variants: {deltas}")
    return "\n".join(lines)


def explain_program(program, backend: str = "dict") -> str:
    """An EXPLAIN dump of every compiled rule, grouped by stratum.

    Mirrors exactly what ``evaluate(program, "compiled")`` runs (or, for
    ``backend="columnar"``, ``evaluate(program, "vectorized")``): the
    same stratification, the same greedy join order, the same plans.
    """
    from repro.datalog.engine import _stratum_rules
    from repro.datalog.stratify import stratify

    assignment = stratify(program)
    if not program.rules:
        return "(no rules: extensional database only)"
    lines = []
    max_stratum = max(assignment.values(), default=0)
    for level in range(max_stratum + 1):
        stratum_predicates = {p for p, s in assignment.items() if s == level}
        rules = _stratum_rules(program, stratum_predicates, optimize=True)
        if not rules:
            continue
        lines.append(f"stratum[{level}]  predicates: "
                     f"{', '.join(sorted(stratum_predicates))}")
        for rule in rules:
            explained = explain_rule(rule, frozenset(stratum_predicates), backend)
            for line in explained.splitlines():
                lines.append("  " + line)
    return "\n".join(lines)
