"""EXPLAIN-style dumps of compiled join plans.

Renders what the compiled strategy will actually execute: per stratum,
per rule, the literal order chosen by ``greedy_join_order`` +
``reorder_body`` and the access path of every literal -- which composite
index it probes (and on which positions), or that it falls back to a
full scan, inlined guard or anti-join.  The data comes straight from
:attr:`repro.datalog.plan.CompiledRule.access_paths`, so the dump cannot
drift from the generated code.

Engine imports are deferred into the functions: the engine itself imports
:mod:`repro.obs` for tracing, and importing it back at module level would
be circular.
"""

from __future__ import annotations


def _render_path(step: dict) -> str:
    access = step["access"]
    if access == "index-probe":
        positions = ",".join(str(p) for p in step["positions"])
        source = step["source"]
        return f"index probe on positions ({positions}) of {source}"
    if access == "full-scan":
        return f"full scan of {step['source']}"
    if access == "anti-join":
        return "anti-join (negated, contains() check)"
    return "inlined guard (built-in)"


def explain_rule(rule, stratum_predicates: frozenset[str] = frozenset()) -> str:
    """The access-path listing for one rule (body already ordered)."""
    from repro.datalog.plan import compile_rule

    plan = compile_rule(rule, set(stratum_predicates))
    lines = [f"plan for {plan.rule!r}"]
    for index, step in enumerate(plan.access_paths, start=1):
        lines.append(f"  {index}. {step['literal']}  --  {_render_path(step)}")
    if plan.delta_variants:
        deltas = ", ".join(pred for pred, _fire in plan.delta_variants)
        lines.append(f"  delta-specialized variants: {deltas}")
    return "\n".join(lines)


def explain_program(program) -> str:
    """An EXPLAIN dump of every compiled rule, grouped by stratum.

    Mirrors exactly what ``evaluate(program, "compiled")`` runs: the same
    stratification, the same greedy join order, the same compiled plans.
    """
    from repro.datalog.engine import _stratum_rules
    from repro.datalog.stratify import stratify

    assignment = stratify(program)
    if not program.rules:
        return "(no rules: extensional database only)"
    lines = []
    max_stratum = max(assignment.values(), default=0)
    for level in range(max_stratum + 1):
        stratum_predicates = {p for p, s in assignment.items() if s == level}
        rules = _stratum_rules(program, stratum_predicates, optimize=True)
        if not rules:
            continue
        lines.append(f"stratum[{level}]  predicates: "
                     f"{', '.join(sorted(stratum_predicates))}")
        for rule in rules:
            for line in explain_rule(rule, frozenset(stratum_predicates)).splitlines():
                lines.append("  " + line)
    return "\n".join(lines)
