"""Per-answer provenance: which rules and believed cells support an answer.

The operational semantics *is* a proof calculus (Figures 9-11), and the
:class:`~repro.multilog.proof.Prover` already rebuilds its trees; this
module distils one tree into an :class:`AnswerProvenance` -- the rule
chain (BELIEF, DESCEND-O, DESCEND-C1..C4, DEDUCTION-G', ...), the
security levels touched, the believed base cells (Sigma facts) at the
leaves, and the clause instances fired along the way -- and renders it
as a paper-style proof sketch with the lattice plumbing (REFLEXIVITY /
TRANSITIVITY chains) collapsed to single lines.

Everything here walks plain :class:`~repro.multilog.proof.ProofTree`
nodes (``rule`` / ``conclusion`` / ``premises`` / ``note``); the entry
point is ``MultiLogSession.explain(query=..., answer=...)`` or
:func:`provenance` directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

#: Cell-shaped fragment of a sequent conclusion: ``level[pred(key : ...``.
_CELL_LEVEL = re.compile(r"(\w+)\[\w+\(")
#: Classification arrow inside a cell: ``-cls->``.
_CELL_CLS = re.compile(r"-(\w+)->")
#: Proof nodes that are pure lattice plumbing: shown one-line, unexpanded.
_LATTICE_RULES = frozenset({"REFLEXIVITY", "TRANSITIVITY", "ORDER", "LEVEL"})
_FACT_NOTES = frozenset({"fact in Sigma"})
_CLAUSE_NOTE_PREFIX = "via clause: "


@dataclass(frozen=True)
class AnswerProvenance:
    """The support of one answer: rule chain, levels, base cells, clauses."""

    answer: dict
    query: str
    rules: tuple[str, ...]       # distinct rule names, pre-order
    levels: tuple[str, ...]      # security levels touched, sorted
    base_cells: tuple[str, ...]  # believed Sigma facts at the leaves
    clauses: tuple[str, ...]     # clause instances fired (DEDUCTION notes)
    tree: object                 # the full ProofTree, for callers who want it

    @classmethod
    def from_proof(cls, answer: dict, tree, query: str = "") -> "AnswerProvenance":
        rules: list[str] = []
        levels: set[str] = set()
        base_cells: list[str] = []
        clauses: list[str] = []

        def walk(node) -> None:
            if node.rule != "EMPTY" and node.rule not in rules:
                rules.append(node.rule)
            if node.rule not in _LATTICE_RULES:
                for match in _CELL_LEVEL.finditer(node.conclusion):
                    levels.add(match.group(1))
                for match in _CELL_CLS.finditer(node.conclusion):
                    levels.add(match.group(1))
            if node.note in _FACT_NOTES:
                cell = _conclusion_goal(node.conclusion)
                if cell not in base_cells:
                    base_cells.append(cell)
            elif node.note.startswith(_CLAUSE_NOTE_PREFIX):
                clause = node.note[len(_CLAUSE_NOTE_PREFIX):]
                if clause not in clauses:
                    clauses.append(clause)
            for premise in node.premises:
                walk(premise)

        walk(tree)
        return cls(dict(answer), query, tuple(rules), tuple(sorted(levels)),
                   tuple(base_cells), tuple(clauses), tree)

    def matches(self, pattern: dict) -> bool:
        """True when every binding in ``pattern`` equals this answer's.

        Comparison falls back to string equality so ``{"B": "900"}``
        matches an integer-valued answer.
        """
        for name, wanted in pattern.items():
            if name not in self.answer:
                return False
            got = self.answer[name]
            if got != wanted and str(got) != str(wanted):
                return False
        return True

    def sketch(self) -> str:
        """The proof tree with lattice plumbing collapsed to one line each."""
        return "\n".join(_sketch_lines(self.tree, 0))

    def render(self) -> str:
        bindings = ", ".join(f"{k}={v}" for k, v in sorted(self.answer.items()))
        header = f"answer {{{bindings}}}" if bindings else "answer (ground)"
        if self.query:
            header += f" to {self.query}"
        lines = [header,
                 f"  rules: {', '.join(self.rules)}",
                 f"  levels: {', '.join(self.levels)}"]
        if self.base_cells:
            lines.append("  believed base cells:")
            lines.extend(f"    {cell}" for cell in self.base_cells)
        if self.clauses:
            lines.append("  via clauses:")
            lines.extend(f"    {clause}" for clause in self.clauses)
        lines.append("  proof sketch:")
        lines.extend("    " + line for line in _sketch_lines(self.tree, 0))
        return "\n".join(lines)


def _conclusion_goal(conclusion: str) -> str:
    """The goal to the right of the turnstile (or the whole string)."""
    _, sep, goal = conclusion.partition("|-")
    return goal.strip() if sep else conclusion.strip()


def _sketch_lines(tree, indent: int) -> list[str]:
    if tree.rule == "EMPTY":
        return []
    pad = "  " * indent
    if tree.rule in _LATTICE_RULES:
        return [f"{pad}({tree.rule}) {_conclusion_goal(tree.conclusion)}"]
    note = f"   % {tree.note}" if tree.note else ""
    lines = [f"{pad}({tree.rule}) {_conclusion_goal(tree.conclusion)}{note}"]
    for premise in tree.premises:
        lines.extend(_sketch_lines(premise, indent + 1))
    return lines


def provenance(session, query) -> list["AnswerProvenance"]:
    """One :class:`AnswerProvenance` per distinct answer of ``query``.

    ``session`` is a :class:`~repro.multilog.session.MultiLogSession`;
    proofs come from its operational engine (the reduction engine answers
    the same queries -- Theorem 6.1 -- but carries no proof trees).
    """
    query_text = query if isinstance(query, str) else str(query)
    return [
        AnswerProvenance.from_proof(answer, tree, query_text)
        for answer, tree in session.proofs(query)
    ]
