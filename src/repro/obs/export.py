"""Telemetry exporters: Prometheus text, Chrome trace, JSONL, sinks.

Three render targets for what :mod:`repro.obs` collects:

* :func:`render_prometheus` -- the text exposition format scraped by
  Prometheus: every counter of an
  :class:`~repro.obs.metrics.EngineMetrics` snapshot (including the
  resilience layer's ``degraded``/retry counters), the per-layer cache
  stats, and the per-span-family latency histograms of a
  :class:`~repro.obs.histogram.HistogramSet` with ``_bucket``/``_sum``/
  ``_count`` series.
* :func:`render_chrome_trace` -- the Trace Event JSON format: open the
  file in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` to
  see the span forest on a timeline.
* :func:`render_jsonl` -- one JSON object per root span tree per line;
  the streaming shape :class:`JsonlSpanSink` appends.

A :class:`TelemetrySink` receives each **root** span as it closes (the
:class:`~repro.obs.trace.TraceRecorder` calls ``write_span``), so a
long-lived session can stream traces to disk instead of accumulating
every forest in memory; :class:`JsonlSpanSink` adds size-based file
rotation on top.  :func:`write_trace` dispatches a recorder dump on the
target suffix (``.json`` / ``.chrome`` / ``.jsonl``) -- the CLI's
``--trace-out`` backend.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Protocol

from repro.obs.histogram import HistogramSet
from repro.obs.metrics import EngineMetrics
from repro.obs.trace import Span, TraceRecorder

# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(**labels: str) -> str:
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}" if inner else ""


def _fmt_bound(bound: float) -> str:
    return repr(bound) if bound != int(bound) else str(int(bound))


def render_prometheus(metrics: EngineMetrics | None = None,
                      histograms: HistogramSet | None = None,
                      namespace: str = "multilog") -> str:
    """Prometheus text exposition of a metrics snapshot + histogram set.

    Per-rule firing counts are exported as totals only (rule source text
    makes a pathological label); the per-rule breakdown stays in
    ``EngineMetrics.to_json``.
    """
    lines: list[str] = []

    def counter(name: str, help_text: str, samples: list[tuple[str, object]]) -> None:
        full = f"{namespace}_{name}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} counter")
        for labels, value in samples:
            lines.append(f"{full}{labels} {value}")

    def gauge(name: str, help_text: str, samples: list[tuple[str, object]]) -> None:
        full = f"{namespace}_{name}"
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} gauge")
        for labels, value in samples:
            lines.append(f"{full}{labels} {value}")

    if metrics is not None:
        counter("asks_total", "Queries answered by the session.",
                [("", metrics.asks)])
        counter("rule_firings_total", "Rule firings across all asks.",
                [("", metrics.total_firings)])
        counter("rows_derived_total", "Rows derived pre-dedup across all asks.",
                [("", metrics.total_rows_derived)])
        counter("join_probes_total", "Index probes during evaluation.",
                [("", metrics.join_probes)])
        counter("candidate_calls_total", "Interpreted-path candidate scans.",
                [("", metrics.candidate_calls)])
        counter("batch_probes_total",
                "Whole-delta hash-join probes (vectorized strategy).",
                [("", getattr(metrics, "batch_probes", 0))])
        counter("batch_builds_total",
                "Build-side hash-table builds/extensions (columnar backend).",
                [("", getattr(metrics, "batch_builds", 0))])
        counter("batch_dedup_rows_total",
                "Rows dropped as duplicates by columnar bulk inserts.",
                [("", getattr(metrics, "batch_dedup_rows", 0))])
        if metrics.rounds:
            counter("fixpoint_rounds_total", "Fixpoint rounds per scope.",
                    [(_labels(scope=scope), count)
                     for scope, count in sorted(metrics.rounds.items())])
        counter("retries_total",
                "Transient-fault retries spent by the resilience executor.",
                [("", getattr(metrics, "retries", 0))])
        counter("fallbacks_total",
                "Strategy-ladder fallbacks taken by the resilience executor.",
                [("", getattr(metrics, "fallbacks", 0))])
        counter("degraded_asks_total",
                "Asks served degraded (fallback rung or budget-partial).",
                [("", getattr(metrics, "degraded_asks", 0))])
        if metrics.cache:
            for kind in ("hits", "misses", "invalidations"):
                counter(f"cache_{kind}_total", f"Cache {kind} per memo layer.",
                        [(_labels(layer=layer), getattr(snap, kind))
                         for layer, snap in sorted(metrics.cache.items())])
        gauge("budget_exceeded",
              "1 when the most recent ask hit its evaluation budget.",
              [("", 1 if metrics.budget_exceeded else 0)])
        gauge("degraded",
              "1 when the most recent ask was served degraded.",
              [("", 1 if metrics.degraded else 0)])

    if histograms is not None and histograms.histograms:
        full = f"{namespace}_span_latency_seconds"
        lines.append(f"# HELP {full} Span latency per span family.")
        lines.append(f"# TYPE {full} histogram")
        for family in histograms.families():
            hist = histograms.histograms[family]
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                labels = _labels(family=family, le=_fmt_bound(bound))
                lines.append(f"{full}_bucket{labels} {cumulative}")
            labels = _labels(family=family, le="+Inf")
            lines.append(f"{full}_bucket{labels} {hist.count}")
            lines.append(f"{full}_sum{_labels(family=family)} {hist.sum:.6f}")
            lines.append(f"{full}_count{_labels(family=family)} {hist.count}")

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Chrome trace (Trace Event format, Perfetto-loadable)
# ----------------------------------------------------------------------

def _roots_of(spans) -> list[Span]:
    if isinstance(spans, TraceRecorder) or hasattr(spans, "roots"):
        return list(spans.roots)
    return list(spans)


def chrome_trace_events(spans: TraceRecorder | Iterable[Span]) -> list[dict]:
    """Complete-duration (``ph: "X"``) events for a span forest.

    Timestamps are microseconds relative to the earliest root, which is
    what trace viewers expect -- ``perf_counter`` origins are arbitrary.
    """
    roots = _roots_of(spans)
    if not roots:
        return []
    base = min(root.started for root in roots)
    events: list[dict] = []

    def emit(span: Span) -> None:
        events.append({
            "name": span.name,
            "cat": "multilog",
            "ph": "X",
            "ts": round((span.started - base) * 1e6, 3),
            "dur": round(span.elapsed_s * 1e6, 3),
            "pid": 1,
            "tid": 1,
            "args": {k: v for k, v in span.attrs.items()},
        })
        for child in span.children:
            emit(child)

    for root in roots:
        emit(root)
    return events


def render_chrome_trace(spans: TraceRecorder | Iterable[Span],
                        indent: int | None = None) -> str:
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    return json.dumps(document, indent=indent, default=repr)


def render_jsonl(spans: TraceRecorder | Iterable[Span]) -> str:
    """One JSON object per root span tree per line."""
    roots = _roots_of(spans)
    return "\n".join(json.dumps(root.to_dict(), default=repr) for root in roots)


def write_trace(recorder, path: str | Path) -> Path:
    """Dump a recorder's forest to ``path``, format chosen by suffix.

    ``.chrome`` -> Trace Event JSON (Perfetto), ``.jsonl`` -> one tree
    per line, anything else -> the recorder's plain JSON span forest.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".chrome":
        text = render_chrome_trace(recorder, indent=None)
    elif suffix == ".jsonl":
        text = render_jsonl(recorder)
    else:
        text = json.dumps([root.to_dict() for root in _roots_of(recorder)],
                          indent=2, default=repr)
    path.write_text(text + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Streaming sinks
# ----------------------------------------------------------------------

class TelemetrySink(Protocol):
    """Anything a :class:`~repro.obs.trace.TraceRecorder` can stream to.

    ``write_span`` receives each root span as it closes (children are
    reachable through the span), so implementations see whole trees.
    """

    def write_span(self, span: Span) -> None: ...

    def close(self) -> None: ...


class ListSink:
    """In-memory sink (tests and ad-hoc capture)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.closed = False

    def write_span(self, span: Span) -> None:
        self.spans.append(span)

    def close(self) -> None:
        self.closed = True


class RotatingJsonlWriter:
    """Append-only line stream with size-based file rotation.

    When the live file would exceed ``max_bytes`` the writer rotates:
    ``name`` -> ``name.1`` -> ... -> ``name.N`` with the oldest dropped,
    so a long-lived stream occupies at most ``max_bytes * (max_files +
    1)`` on disk.  The shared mechanics under :class:`JsonlSpanSink`
    (span trees) and the serving layer's structured access log (request
    lines) -- both are "one JSON object per line, bounded on disk".
    """

    def __init__(self, path: str | Path, max_bytes: int = 8 * 1024 * 1024,
                 max_files: int = 3):
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a", encoding="utf-8")
        self.lines_written = 0
        self.rotations = 0

    def write_line(self, line: str) -> None:
        """Append one line (no trailing newline), rotating first if due."""
        line = line + "\n"
        if self._handle.tell() + len(line) > self.max_bytes and self._handle.tell():
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        self.lines_written += 1

    def _rotate(self) -> None:
        self._handle.close()
        oldest = self.path.with_name(self.path.name + f".{self.max_files}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_files - 1, 0, -1):
            source = self.path.with_name(self.path.name + f".{index}")
            if source.exists():
                source.rename(self.path.with_name(self.path.name + f".{index + 1}"))
        if self.max_files > 0:
            self.path.rename(self.path.with_name(self.path.name + ".1"))
        self._handle = self.path.open("a", encoding="utf-8")
        self.rotations += 1

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RotatingJsonlWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class JsonlSpanSink:
    """Append-only JSONL span stream with size-based file rotation.

    When the live file would exceed ``max_bytes`` the sink rotates:
    ``trace.jsonl`` -> ``trace.jsonl.1`` -> ... -> ``trace.jsonl.N`` with
    the oldest dropped, so a long-lived session's telemetry occupies at
    most ``max_bytes * (max_files + 1)`` on disk (the mechanics live in
    :class:`RotatingJsonlWriter`).
    """

    def __init__(self, path: str | Path, max_bytes: int = 8 * 1024 * 1024,
                 max_files: int = 3):
        self._writer = RotatingJsonlWriter(path, max_bytes=max_bytes,
                                           max_files=max_files)

    @property
    def path(self) -> Path:
        return self._writer.path

    @property
    def max_bytes(self) -> int:
        return self._writer.max_bytes

    @property
    def max_files(self) -> int:
        return self._writer.max_files

    @property
    def spans_written(self) -> int:
        return self._writer.lines_written

    @property
    def rotations(self) -> int:
        return self._writer.rotations

    def write_span(self, span: Span) -> None:
        self._writer.write_line(json.dumps(span.to_dict(), default=repr))

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
