"""The ambient observation context.

The evaluation stack is deep (session -> reduction -> Datalog engine ->
compiled plans) and most entry points are also public API; threading a
recorder/metrics/budget triple through every signature would contaminate
all of them.  Instead one :class:`ObsContext` rides on a
:class:`contextvars.ContextVar`: instrumentation producers install it
with :func:`use`, and each engine reads :func:`current` **once** per
evaluation and passes the pieces down as locals.

The default context is fully disabled -- :data:`~repro.obs.trace.
NULL_RECORDER`, :data:`~repro.obs.metrics.NULL_METRICS`,
:data:`~repro.obs.audit.NULL_AUDIT` and no budget meter -- so
un-instrumented callers pay a single ``ContextVar.get`` per
``evaluate()`` call and nothing per row.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar

from repro.obs.audit import NULL_AUDIT, AuditLog
from repro.obs.budget import BudgetMeter, EvaluationBudget
from repro.obs.metrics import NULL_METRICS, MetricsCollector
from repro.obs.trace import NULL_RECORDER, TraceRecorder


class ObsContext:
    """A recorder + metrics + budget meter + fault plan + audit bundle.

    ``faults`` is an optional :class:`~repro.resilience.FaultPlan` (any
    object with ``wrap_recorder``): when given, the recorder is wrapped so
    every ``span(name)`` call -- the engines' named span points -- first
    offers the plan a chance to raise, delay or corrupt-and-detect.  The
    wrapping works even when tracing is off (the null recorder's span
    points still fire), so chaos tests do not pay for span collection.

    ``parent_span`` carries a request-scoped parent across thread and
    recorder boundaries: the serving layer opens a per-request root span,
    installs a context naming it, and copies the contextvars context into
    the executor offload -- the session then builds its per-ask
    :class:`~repro.obs.trace.TraceRecorder` with that span as its graft
    ``parent``, so engine/stratum spans nest under the request that
    caused them.  It never affects :attr:`enabled`: parenting is a
    correlation hint, not an instrumentation switch.

    ``sample_rate`` enables head-based trace sampling: the keep/drop
    decision is made *here*, once, at context construction -- an
    unsampled context swaps its recorder for the null recorder before any
    span exists, so the whole trace is dropped for the cost of one random
    draw (``sampled`` records the decision).  Metrics, budgets, faults
    and audit are never sampled away: counters must stay exact and the
    audit trail is a security record, not telemetry.  Pass
    ``sample_draw`` to make the decision deterministic (tests, seeded
    sessions).
    """

    __slots__ = ("recorder", "metrics", "meter", "faults", "audit",
                 "sample_rate", "sampled", "parent_span")

    def __init__(self, recorder=None, metrics=None, meter: BudgetMeter | None = None,
                 faults=None, audit=None, sample_rate: float = 1.0,
                 sample_draw: float | None = None, parent_span=None):
        self.sample_rate = sample_rate
        if sample_rate >= 1.0:
            self.sampled = True
        else:
            draw = sample_draw if sample_draw is not None else random.random()
            self.sampled = draw < sample_rate
        recorder = recorder if recorder is not None else NULL_RECORDER
        if not self.sampled:
            recorder = NULL_RECORDER
        if faults is not None:
            recorder = faults.wrap_recorder(recorder)
        self.recorder = recorder
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.meter = meter
        self.faults = faults
        self.audit = audit if audit is not None else NULL_AUDIT
        self.parent_span = parent_span

    @property
    def enabled(self) -> bool:
        return (self.recorder.enabled or self.metrics.enabled
                or self.meter is not None or self.faults is not None
                or self.audit.enabled)


#: The all-disabled context every evaluation sees unless told otherwise.
DISABLED = ObsContext()

_CURRENT: ContextVar[ObsContext] = ContextVar("repro-obs-context", default=DISABLED)


def current() -> ObsContext:
    """The context ambient evaluation should report into."""
    return _CURRENT.get()


@contextmanager
def use(ctx: ObsContext):
    """Install ``ctx`` as the ambient context for the ``with`` body."""
    token = _CURRENT.set(ctx)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)


def observe(trace: bool = True, metrics: bool = True,
            budget: EvaluationBudget | None = None, faults=None,
            audit: bool = False, sample_rate: float = 1.0,
            histograms=None, sink=None) -> ObsContext:
    """A fresh enabled context (convenience for one traced evaluation).

    ``histograms`` (a :class:`~repro.obs.histogram.HistogramSet`) and
    ``sink`` (a :class:`~repro.obs.export.TelemetrySink`) attach to the
    recorder's span-close path; ``audit=True`` attaches a fresh
    :class:`~repro.obs.audit.AuditLog`.

    >>> from repro.obs import observe, use
    >>> ctx = observe()
    >>> with use(ctx):
    ...     ...  # evaluate / ask
    >>> ctx.recorder.pretty()  # doctest: +SKIP
    """
    return ObsContext(
        TraceRecorder(histograms=histograms, sink=sink) if trace else None,
        MetricsCollector() if metrics else None,
        BudgetMeter(budget) if budget is not None else None,
        faults,
        AuditLog() if audit else None,
        sample_rate=sample_rate,
    )
