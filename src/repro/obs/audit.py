"""The MLS security-audit trail: append-only structured events.

MLS relational systems mandate an audit trail of every cross-level
access (the filter model's "polyinstantiation and audit" discipline);
this module is the deductive-database analogue.  Whenever belief
computation reads *down* the lattice -- an optimistic/cautious subject
at level ``s`` consuming a cell classified at ``u`` -- the engines emit
a :class:`AuditEvent` into the ambient :class:`AuditLog`:

========================  ==============================================
kind                      emitted when
========================  ==============================================
``cross_level_read``      belief at ``subject`` level consumed a cell
                          classified at a *strictly lower* ``object``
                          level (fields: subject, object, mode,
                          predicate)
``override``              cautious inheritance at ``subject`` overrode a
                          lower-level cell's value for the same
                          (predicate, key, attribute) slot
``filter_suppression``    the Jajodia-Sandhu filter dropped or nulled a
                          believed cell at this level
``surprise_story``        the surprise oracle found a cell believed low
                          but invisible high -- the paper's headline
                          covert-story leak
``assert``                a clause was asserted through the session
                          (mirrors the crash-safe journal record)
``recover``               a session was rebuilt from its journal
``slow_capture``          the serving slow log retained a request's
                          query text and span tree (fields: subject =
                          the clearance the request ran at, trace_id,
                          op, outcome) -- retention is itself an access
========================  ==============================================

Identical events collapse into one entry with an occurrence ``count``
(a fixpoint engine revisits the same cell every round; the *fact* of the
downward read is the audit signal, not its multiplicity), preserving
first-occurrence order.  :data:`NULL_AUDIT` keeps the disabled path
allocation-free: emission sites guard on ``audit.enabled`` before
building any event.  Query the trail via
``MultiLogSession.audit_log()``; export it with :meth:`AuditLog.to_jsonl`
or the ``multilog audit`` subcommand.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: The audit event kinds, in the order the table above documents them.
AUDIT_KINDS = (
    "cross_level_read",
    "override",
    "filter_suppression",
    "surprise_story",
    "assert",
    "recover",
    "slow_capture",
)


@dataclass(frozen=True)
class AuditEvent:
    """One structured audit record (hashable: identical events dedup)."""

    kind: str
    subject: str | None = None   # security level doing the reading/writing
    object: str | None = None    # security level of the data touched
    mode: str | None = None      # belief mode in force (fir/opt/cau)
    predicate: str | None = None
    detail: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def detail_dict(self) -> dict[str, str]:
        return dict(self.detail)

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind}
        for name in ("subject", "object", "mode", "predicate"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        out.update(self.detail)
        return out

    def render(self) -> str:
        parts = [self.kind]
        if self.subject is not None:
            parts.append(f"subject={self.subject}")
        if self.object is not None:
            parts.append(f"object={self.object}")
        if self.mode is not None:
            parts.append(f"mode={self.mode}")
        if self.predicate is not None:
            parts.append(f"predicate={self.predicate}")
        parts.extend(f"{k}={v}" for k, v in self.detail)
        return "  ".join(parts)


class AuditLog:
    """Append-only, deduplicating store of audit events."""

    __slots__ = ("_order", "_counts")

    enabled = True

    def __init__(self) -> None:
        self._order: list[AuditEvent] = []
        self._counts: dict[AuditEvent, int] = {}

    def emit(self, kind: str, subject: str | None = None, object: str | None = None,
             mode: str | None = None, predicate: str | None = None, **detail) -> None:
        if kind not in AUDIT_KINDS:
            raise ValueError(f"unknown audit kind {kind!r}; one of {AUDIT_KINDS}")
        event = AuditEvent(
            kind, subject, object, mode, predicate,
            tuple(sorted((k, str(v)) for k, v in detail.items())),
        )
        seen = self._counts.get(event)
        if seen is None:
            self._order.append(event)
            self._counts[event] = 1
        else:
            self._counts[event] = seen + 1

    # -- querying --------------------------------------------------------
    def events(self, kind: str | None = None) -> list[AuditEvent]:
        if kind is None:
            return list(self._order)
        return [event for event in self._order if event.kind == kind]

    def count(self, event: AuditEvent) -> int:
        """How many times ``event`` was emitted (occurrences, not entries)."""
        return self._counts.get(event, 0)

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._order)

    def clear(self) -> None:
        self._order.clear()
        self._counts.clear()

    # -- export ----------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        out = []
        for event in self._order:
            record = event.to_dict()
            record["count"] = self._counts[event]
            out.append(record)
        return out

    def to_jsonl(self) -> str:
        """One JSON object per line, in first-occurrence order."""
        return "\n".join(json.dumps(record, sort_keys=True)
                         for record in self.to_dicts())

    def render(self) -> str:
        """Human-readable trail (the CLI's ``:audit`` output)."""
        if not self._order:
            return "(audit trail empty)"
        lines = []
        for event in self._order:
            count = self._counts[event]
            suffix = f"  x{count}" if count > 1 else ""
            lines.append(event.render() + suffix)
        return "\n".join(lines)


class NullAudit:
    """Disabled path: emission sites check ``enabled`` first, so these
    no-ops only catch stragglers."""

    __slots__ = ()

    enabled = False

    def emit(self, kind: str, subject: str | None = None, object: str | None = None,
             mode: str | None = None, predicate: str | None = None, **detail) -> None:
        pass

    def events(self, kind: str | None = None) -> list[AuditEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def clear(self) -> None:
        pass

    def to_dicts(self) -> list[dict]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def render(self) -> str:
        return "(audit disabled)"


NULL_AUDIT = NullAudit()
