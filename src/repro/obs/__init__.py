"""Observability for the evaluation stack: tracing, metrics, budgets.

PR 1 made the engine fast; this package makes it visible and bounded.
Three cooperating pieces, all threaded through ``evaluate``, the
operational engine, the tau-translation, the belief function and
``MultiLogSession``:

* **Tracing** (:mod:`~repro.obs.trace`) -- nestable spans (``parse``,
  ``stratify``, ``stratum[i]``, ``rule-fire``, ``beta``,
  ``tau-translate``, ``query``) with wall time, row counts and delta
  sizes, collected as a tree and dumpable as JSON.  The
  :data:`NULL_RECORDER` keeps the disabled path allocation-free.
* **Metrics** (:mod:`~repro.obs.metrics`) -- per-rule firing counts,
  join-probe counts, fixpoint round counts and the cache layer's
  hit rates, frozen into one :class:`EngineMetrics` snapshot
  (``MultiLogSession.last_stats()``).
* **Budgets** (:mod:`~repro.obs.budget`) -- an :class:`EvaluationBudget`
  (row / round / wall-clock caps) enforced by every strategy and by
  ``cautious()``, raising :class:`~repro.errors.BudgetExceededError`
  with the partial metrics attached.

PR 5 grew the in-process tracer into a telemetry pipeline and an MLS
security-audit / provenance subsystem:

* **Histograms** (:mod:`~repro.obs.histogram`) -- fixed-bucket latency
  histograms with p50/p95/p99 per span family, fed on span close.
* **Exporters** (:mod:`~repro.obs.export`) -- Prometheus text
  exposition, Chrome-trace (Perfetto) and JSONL renderers, plus
  streaming :class:`TelemetrySink` implementations with file rotation.
* **Audit trail** (:mod:`~repro.obs.audit`) -- append-only structured
  events for every cross-level read, cautious override, filter
  suppression, surprise story, assert and recovery.
* **Provenance** (:mod:`~repro.obs.provenance`) -- per-answer rule
  chains and believed base cells distilled from Figure 9-11 proof trees.

Wiring happens through the ambient :class:`ObsContext`
(:mod:`~repro.obs.context`): install one with :func:`use` (or let
``MultiLogSession.ask`` do it) and every engine underneath reports into
it.  Head-based trace sampling rides the context too
(``ObsContext(sample_rate=...)``).  ``docs/OBSERVABILITY.md`` has the
full model and CLI examples.
"""

from repro.obs.audit import (
    AUDIT_KINDS,
    NULL_AUDIT,
    AuditEvent,
    AuditLog,
    NullAudit,
)
from repro.obs.budget import BudgetMeter, EvaluationBudget
from repro.obs.context import DISABLED, ObsContext, current, observe, use
from repro.obs.explain import explain_program, explain_rule
from repro.obs.export import (
    JsonlSpanSink,
    ListSink,
    RotatingJsonlWriter,
    TelemetrySink,
    chrome_trace_events,
    render_chrome_trace,
    render_jsonl,
    render_prometheus,
    write_trace,
)
from repro.obs.histogram import (
    DEFAULT_BUCKETS,
    HistogramSet,
    LatencyHistogram,
    span_family,
)
from repro.obs.metrics import (
    NULL_METRICS,
    CacheSnapshot,
    EngineMetrics,
    MetricsCollector,
    NullMetrics,
)
from repro.obs.provenance import AnswerProvenance, provenance
from repro.obs.trace import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    Span,
    TraceRecorder,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)

__all__ = [
    "AUDIT_KINDS",
    "AnswerProvenance",
    "AuditEvent",
    "AuditLog",
    "BudgetMeter",
    "CacheSnapshot",
    "DEFAULT_BUCKETS",
    "DISABLED",
    "EngineMetrics",
    "EvaluationBudget",
    "HistogramSet",
    "JsonlSpanSink",
    "LatencyHistogram",
    "ListSink",
    "MetricsCollector",
    "NULL_AUDIT",
    "NULL_METRICS",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NullAudit",
    "NullMetrics",
    "NullRecorder",
    "ObsContext",
    "RotatingJsonlWriter",
    "Span",
    "TelemetrySink",
    "TraceRecorder",
    "chrome_trace_events",
    "current",
    "explain_program",
    "explain_rule",
    "format_traceparent",
    "new_span_id",
    "new_trace_id",
    "observe",
    "parse_traceparent",
    "provenance",
    "render_chrome_trace",
    "render_jsonl",
    "render_prometheus",
    "span_family",
    "use",
    "write_trace",
]
