"""Observability for the evaluation stack: tracing, metrics, budgets.

PR 1 made the engine fast; this package makes it visible and bounded.
Three cooperating pieces, all threaded through ``evaluate``, the
operational engine, the tau-translation, the belief function and
``MultiLogSession``:

* **Tracing** (:mod:`~repro.obs.trace`) -- nestable spans (``parse``,
  ``stratify``, ``stratum[i]``, ``rule-fire``, ``beta``,
  ``tau-translate``, ``query``) with wall time, row counts and delta
  sizes, collected as a tree and dumpable as JSON.  The
  :data:`NULL_RECORDER` keeps the disabled path allocation-free.
* **Metrics** (:mod:`~repro.obs.metrics`) -- per-rule firing counts,
  join-probe counts, fixpoint round counts and the cache layer's
  hit rates, frozen into one :class:`EngineMetrics` snapshot
  (``MultiLogSession.last_stats()``).
* **Budgets** (:mod:`~repro.obs.budget`) -- an :class:`EvaluationBudget`
  (row / round / wall-clock caps) enforced by every strategy and by
  ``cautious()``, raising :class:`~repro.errors.BudgetExceededError`
  with the partial metrics attached.

Wiring happens through the ambient :class:`ObsContext`
(:mod:`~repro.obs.context`): install one with :func:`use` (or let
``MultiLogSession.ask`` do it) and every engine underneath reports into
it.  ``docs/OBSERVABILITY.md`` has the full model and CLI examples.
"""

from repro.obs.budget import BudgetMeter, EvaluationBudget
from repro.obs.context import DISABLED, ObsContext, current, observe, use
from repro.obs.explain import explain_program, explain_rule
from repro.obs.metrics import (
    NULL_METRICS,
    CacheSnapshot,
    EngineMetrics,
    MetricsCollector,
    NullMetrics,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    Span,
    TraceRecorder,
)

__all__ = [
    "BudgetMeter",
    "CacheSnapshot",
    "DISABLED",
    "EngineMetrics",
    "EvaluationBudget",
    "MetricsCollector",
    "NULL_METRICS",
    "NULL_RECORDER",
    "NULL_SPAN",
    "NullMetrics",
    "NullRecorder",
    "ObsContext",
    "Span",
    "TraceRecorder",
    "current",
    "explain_program",
    "explain_rule",
    "observe",
    "use",
]
