"""Fixed-bucket latency histograms, recorded per span family.

A :class:`LatencyHistogram` is the classic monitoring primitive: a fixed
set of upper-bound buckets (log-spaced from 10us to 10s), a total count
and a running sum.  Observations are O(number of buckets) with no
allocation, so a histogram can sit on the hot span-close path of a
long-lived session without growing; percentiles (p50/p95/p99) are
estimated by linear interpolation inside the covering bucket -- the same
estimation Prometheus applies to ``_bucket`` series, computed locally.

A :class:`HistogramSet` keys histograms by **span family**: the span
name with run-specific indices collapsed (``stratum[3]`` ->
``stratum[*]``, ``round[17]`` -> ``round[*]``) and the evaluation
strategy folded into the ``evaluate`` family (``evaluate[compiled]``),
so per-strategy latencies are separable.  The set is fed by
:class:`~repro.obs.trace.TraceRecorder` as spans close (pass one via
``TraceRecorder(histograms=...)``) and rendered by
:func:`repro.obs.export.render_prometheus`.
"""

from __future__ import annotations

from bisect import bisect_left

#: Upper bucket bounds in seconds (log-spaced 10us .. 10s); observations
#: above the last bound land in the implicit +Inf bucket.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def span_family(name: str, attrs: dict | None = None) -> str:
    """The histogram family a span belongs to.

    Indexed spans collapse (``stratum[3]`` -> ``stratum[*]``); the
    ``evaluate`` span splits per strategy so the three Datalog strategies
    get separate latency distributions.
    """
    if name == "evaluate" and attrs and "strategy" in attrs:
        return f"evaluate[{attrs['strategy']}]"
    bracket = name.find("[")
    if bracket != -1 and name.endswith("]"):
        return name[:bracket] + "[*]"
    return name


class LatencyHistogram:
    """Counts of observations per fixed latency bucket."""

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    # -- estimation ------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1), interpolated inside the covering bucket.

        The +Inf bucket is clamped to the largest finite bound; an empty
        histogram estimates 0.0.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                into = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * into
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum_s": round(self.sum, 6),
            "min_s": round(self.min, 6) if self.count else 0.0,
            "max_s": round(self.max, 6),
            "p50_s": round(self.p50, 6),
            "p95_s": round(self.p95, 6),
            "p99_s": round(self.p99, 6),
        }

    def __repr__(self) -> str:
        return f"LatencyHistogram(count={self.count}, p50={self.p50:.6f}s)"


class HistogramSet:
    """Latency histograms keyed by span family (one shared bucket layout)."""

    __slots__ = ("bounds", "histograms")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        self.bounds = bounds
        self.histograms: dict[str, LatencyHistogram] = {}

    def observe(self, family: str, seconds: float) -> None:
        histogram = self.histograms.get(family)
        if histogram is None:
            histogram = self.histograms[family] = LatencyHistogram(self.bounds)
        histogram.observe(seconds)

    def observe_span(self, name: str, attrs: dict, seconds: float) -> None:
        self.observe(span_family(name, attrs), seconds)

    def get(self, family: str) -> LatencyHistogram | None:
        return self.histograms.get(family)

    def families(self) -> list[str]:
        return sorted(self.histograms)

    def to_dict(self) -> dict[str, dict]:
        return {family: h.to_dict() for family, h in sorted(self.histograms.items())}

    def summary(self) -> str:
        """One line per family: count and the three headline percentiles."""
        lines = []
        for family, h in sorted(self.histograms.items()):
            lines.append(
                f"{family}: n={h.count} p50={h.p50 * 1e3:.3f}ms "
                f"p95={h.p95 * 1e3:.3f}ms p99={h.p99 * 1e3:.3f}ms"
            )
        return "\n".join(lines)
