"""CI serving smoke: 200 concurrent clients, a leak-free audit trail.

Starts an in-process MultiLogServer over the D1 workload, drives
``--clients`` concurrent connections (mixed clearances, mixed
ask/assert, reduction asks included so cross-level reads hit the audit
trail), and asserts the MLS invariant end to end: **every**
``cross_level_read`` recorded by the server-wide audit log goes *down*
the lattice (``object <= subject``) — zero cross-clearance leaks.

Exit code 0 on success; prints a one-line summary for the CI log.

    PYTHONPATH=src python scripts/serving_smoke.py --clients 200
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

CLEARANCES = ("u", "c", "s")
ASKS = {
    "u": "u[p(K : a -C-> V)] << cau",
    "c": "c[p(K : a -C-> V)] << opt",
    "s": "s[p(K : a -C-> V)] << cau",
}


async def drive(host: str, port: int, index: int) -> int:
    clearance = CLEARANCES[index % len(CLEARANCES)]
    requests = 0
    async with await ServingClient.connect(host, port, clearance) as client:
        engine = "reduction" if index % 2 else "operational"
        await client.ask(ASKS[clearance], engine=engine)
        requests += 1
        if index % 10 == 0:
            await client.assert_clause(
                f"{clearance}[t(s{index} : f -{clearance}-> {index})].")
            requests += 1
        await client.ask(ASKS[clearance], engine="reduction")
        requests += 1
    return requests


async def main(n_clients: int) -> int:
    server = MultiLogServer(
        D1_SOURCE, ServerConfig(clearance="s", max_inflight=4096))
    await server.start()
    host, port = server.address
    try:
        counts = await asyncio.gather(*(
            drive(host, port, index) for index in range(n_clients)))
    finally:
        await server.stop()

    events = server.audit.to_dicts() if server.audit is not None else []
    crosses = [e for e in events if e["kind"] == "cross_level_read"]
    lattice = server.root.lattice
    leaks = [e for e in crosses if not lattice.leq(e["object"], e["subject"])]
    subjects = {e["subject"] for e in crosses}

    print(f"serving smoke: {n_clients} clients, {sum(counts)} requests, "
          f"{server.stats.shed_total} shed, {len(crosses)} cross-level reads "
          f"across {len(subjects)} clearances, {len(leaks)} leaks")
    if not crosses:
        print("FAIL: no cross-level reads audited (trail not wired?)")
        return 1
    if len(subjects) < 2:
        print("FAIL: audit trail does not span multiple clearances")
        return 1
    if leaks:
        for event in leaks[:10]:
            print(f"LEAK: {event}")
        return 1
    if server.stats.shed_total:
        print("FAIL: smoke load must not shed")
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=200)
    args = parser.parse_args()
    sys.exit(asyncio.run(main(args.clients)))
