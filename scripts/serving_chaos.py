"""CI serving chaos: seeded mayhem, then a byte-identical recovery.

Starts an in-process journaled MultiLogServer over the D1 workload and
drives ``--clients`` connections through a seeded mix of chaos:

* well-behaved asks and asserts at mixed clearances (reduction asks
  included, so cross-level reads hit the audit trail);
* torn frames -- half a JSON request, then an abrupt RST;
* slow-loris connections that open and never speak;
* requests with near-zero deadlines (must die with ``deadline``, not
  wedge a worker);
* one injected ENOSPC burst against the journal mid-run (asserts must
  fail clean and roll back, then heal).

Afterwards the server drains (final checkpoint included) and the
invariants are checked end to end:

1. **Durability differential** -- replaying the journal from disk yields
   a database byte-identical (canonical source dump) to the live one,
   at the same version: every acknowledged write survived, nothing
   unacknowledged leaked in.
2. **MLS invariant** -- every ``cross_level_read`` in the server-wide
   audit trail goes *down* the lattice: zero cross-clearance leaks,
   chaos or not.

Exit code 0 on success; prints a one-line summary for the CI log.

    PYTHONPATH=src python scripts/serving_chaos.py --seed 0 --clients 48
"""

from __future__ import annotations

import argparse
import asyncio
import random
import socket
import struct
import sys
import tempfile
from pathlib import Path

from repro.resilience import FaultPlan
from repro.resilience.journal import SessionJournal, database_source
from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

CLEARANCES = ("u", "c", "s")
ASKS = {
    "u": "u[p(K : a -C-> V)] << cau",
    "c": "c[p(K : a -C-> V)] << opt",
    "s": "s[p(K : a -C-> V)] << cau",
}

#: outcomes a chaos client may report (summary bookkeeping).
OUTCOMES = ("ok", "torn", "loris", "deadline", "enospc-clean", "shed")


def rst_close(sock: socket.socket) -> None:
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
    sock.close()


async def drive(host: str, port: int, index: int, rng: random.Random,
                counts: dict) -> None:
    clearance = CLEARANCES[index % len(CLEARANCES)]
    roll = rng.random()
    if roll < 0.15:
        # Torn frame: half a request, then an RST mid-connection.
        sock = socket.create_connection((host, port))
        sock.sendall(b'{"op": "ask", "query": "' + b"s[p(" * rng.randint(1, 4))
        await asyncio.sleep(rng.uniform(0, 0.01))
        rst_close(sock)
        counts["torn"] += 1
        return
    if roll < 0.25:
        # Slow loris: connect, say nothing, linger, leave.
        sock = socket.create_connection((host, port))
        await asyncio.sleep(rng.uniform(0.01, 0.05))
        sock.close()
        counts["loris"] += 1
        return
    async with await ServingClient.connect(host, port, clearance) as client:
        if roll < 0.35:
            # Near-zero deadline: the server must answer ``deadline``.
            response = await client.request(
                {"op": "ask", "query": ASKS[clearance], "timeout_s": 1e-9})
            assert response["code"] == "deadline", response
            counts["deadline"] += 1
            return
        engine = "reduction" if index % 2 else "operational"
        await client.ask(ASKS[clearance], engine=engine)
        if index % 5 == 0:
            response = await client.request(
                {"op": "assert",
                 "clause": f"{clearance}[t(s{index} : f "
                           f"-{clearance}-> {index})]."})
            if not response.get("ok"):
                # The ENOSPC window: the assert must fail *clean* with a
                # journal error, never ack-then-lose.
                assert response["code"] == "internal", response
                counts["enospc-clean"] += 1
                return
        await client.ask(ASKS[clearance], engine="reduction")
        counts["ok"] += 1


async def main(seed: int, n_clients: int, journal_path: Path) -> int:
    rng = random.Random(seed)
    server = MultiLogServer(D1_SOURCE, ServerConfig(
        clearance="s", journal=str(journal_path), max_inflight=4096,
        checkpoint_records=25, checkpoint_poll_s=0.02))
    await server.start()
    host, port = server.address
    counts = dict.fromkeys(OUTCOMES, 0)

    # One ENOSPC burst mid-run: a few journal appends hit a full disk.
    plan = FaultPlan(seed=seed)
    plan.arm("journal-append", action="enospc", after=3, times=2)
    server.root.journal.arm_faults(plan)

    try:
        await asyncio.gather(*(
            drive(host, port, index, rng, counts)
            for index in range(n_clients)))
        drained = await server.drain(timeout_s=10.0)
    finally:
        await server.stop()

    live = database_source(server.root.database)
    live_version = server.root.database.version

    # 1. Durability differential: disk == memory, byte for byte.
    replayed = SessionJournal(journal_path).replay()
    replay_ok = (database_source(replayed) == live
                 and replayed.version == live_version)

    # 2. The MLS invariant under chaos: zero cross-clearance leaks.
    events = server.audit.to_dicts() if server.audit is not None else []
    crosses = [e for e in events if e["kind"] == "cross_level_read"]
    lattice = server.root.lattice
    leaks = [e for e in crosses if not lattice.leq(e["object"], e["subject"])]

    outcome = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
    print(f"serving chaos: seed={seed} clients={n_clients} ({outcome}), "
          f"{server.stats.checkpoints_total} checkpoints, "
          f"{server.stats.cancelled_total} cancelled, "
          f"{len(crosses)} cross-level reads, {len(leaks)} leaks, "
          f"drain={'clean' if drained else 'TIMEOUT'}, "
          f"replay={'identical' if replay_ok else 'DIVERGED'}")
    if not replay_ok:
        print(f"FAIL: journal replay diverged from the live database "
              f"(live v{live_version}, replayed v{replayed.version})")
        return 1
    if leaks:
        for event in leaks[:10]:
            print(f"LEAK: {event}")
        return 1
    if not crosses:
        print("FAIL: no cross-level reads audited (trail not wired?)")
        return 1
    if not drained:
        print("FAIL: drain timed out with requests in flight")
        return 1
    if counts["enospc-clean"] == 0 and plan.history:
        print("FAIL: ENOSPC fired but no assert reported a clean failure")
        return 1
    if counts["ok"] == 0:
        print("FAIL: chaos drowned out every well-behaved client")
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=48)
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="multilog-chaos-") as tmp:
        sys.exit(asyncio.run(main(args.seed, args.clients,
                                  Path(tmp) / "wal.jsonl")))
