"""CI serving chaos: seeded mayhem, then a byte-identical recovery.

Starts an in-process journaled MultiLogServer over the D1 workload and
drives ``--clients`` connections through a seeded mix of chaos:

* well-behaved asks and asserts at mixed clearances (reduction asks
  included, so cross-level reads hit the audit trail);
* torn frames -- half a JSON request, then an abrupt RST;
* slow-loris connections that open and never speak;
* requests with near-zero deadlines (must die with ``deadline``, not
  wedge a worker);
* one injected ENOSPC burst against the journal mid-run (asserts must
  fail clean and roll back, then heal).

Afterwards the server drains (final checkpoint included) and the
invariants are checked end to end:

1. **Durability differential** -- replaying the journal from disk yields
   a database byte-identical (canonical source dump) to the live one,
   at the same version: every acknowledged write survived, nothing
   unacknowledged leaked in.
2. **MLS invariant** -- every ``cross_level_read`` in the server-wide
   audit trail goes *down* the lattice: zero cross-clearance leaks,
   chaos or not.
3. **Observability stays leak-free** (``--trace --access-log``): every
   request root span reaching the sink is closed with an outcome (no
   span left open by torn frames, deadlines or mid-ask disconnects),
   every access-log line is valid JSON carrying a trace id, the span
   and line counts agree, and the process file-descriptor count after
   shutdown is back at the post-start baseline.

Exit code 0 on success; prints a one-line summary for the CI log.

    PYTHONPATH=src python scripts/serving_chaos.py --seed 0 --clients 48 \
        --trace --access-log
"""

from __future__ import annotations

import argparse
import asyncio
import gc
import json
import os
import random
import socket
import struct
import sys
import tempfile
from pathlib import Path

from repro.resilience import FaultPlan
from repro.resilience.journal import SessionJournal, database_source
from repro.serving import MultiLogServer, ServerConfig, ServingClient
from repro.workloads.d1 import D1_SOURCE

CLEARANCES = ("u", "c", "s")
ASKS = {
    "u": "u[p(K : a -C-> V)] << cau",
    "c": "c[p(K : a -C-> V)] << opt",
    "s": "s[p(K : a -C-> V)] << cau",
}

#: outcomes a chaos client may report (summary bookkeeping).
OUTCOMES = ("ok", "torn", "loris", "deadline", "enospc-clean", "shed")


class _SpanSink:
    """Trace sink that keeps every request root span for leak checks."""

    def __init__(self) -> None:
        self.spans: list = []

    def write_span(self, span) -> None:
        self.spans.append(span)


def _open_fds() -> int | None:
    """The process's open file-descriptor count (Linux), else ``None``."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        return None


def rst_close(sock: socket.socket) -> None:
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
    sock.close()


async def drive(host: str, port: int, index: int, rng: random.Random,
                counts: dict) -> None:
    clearance = CLEARANCES[index % len(CLEARANCES)]
    roll = rng.random()
    if roll < 0.15:
        # Torn frame: half a request, then an RST mid-connection.
        sock = socket.create_connection((host, port))
        sock.sendall(b'{"op": "ask", "query": "' + b"s[p(" * rng.randint(1, 4))
        await asyncio.sleep(rng.uniform(0, 0.01))
        rst_close(sock)
        counts["torn"] += 1
        return
    if roll < 0.25:
        # Slow loris: connect, say nothing, linger, leave.
        sock = socket.create_connection((host, port))
        await asyncio.sleep(rng.uniform(0.01, 0.05))
        sock.close()
        counts["loris"] += 1
        return
    async with await ServingClient.connect(host, port, clearance) as client:
        if roll < 0.35:
            # Near-zero deadline: the server must answer ``deadline``.
            response = await client.request(
                {"op": "ask", "query": ASKS[clearance], "timeout_s": 1e-9})
            assert response["code"] == "deadline", response
            counts["deadline"] += 1
            return
        engine = "reduction" if index % 2 else "operational"
        await client.ask(ASKS[clearance], engine=engine)
        if index % 5 == 0:
            response = await client.request(
                {"op": "assert",
                 "clause": f"{clearance}[t(s{index} : f "
                           f"-{clearance}-> {index})]."})
            if not response.get("ok"):
                # The ENOSPC window: the assert must fail *clean* with a
                # journal error, never ack-then-lose.
                assert response["code"] == "internal", response
                counts["enospc-clean"] += 1
                return
        await client.ask(ASKS[clearance], engine="reduction")
        counts["ok"] += 1


async def main(seed: int, n_clients: int, journal_path: Path,
               trace: bool = False,
               access_log_path: Path | None = None) -> int:
    rng = random.Random(seed)
    sink = _SpanSink() if trace else None
    server = MultiLogServer(D1_SOURCE, ServerConfig(
        clearance="s", journal=str(journal_path), max_inflight=4096,
        checkpoint_records=25, checkpoint_poll_s=0.02,
        trace=trace, trace_sink=sink,
        access_log=str(access_log_path) if access_log_path else None))
    await server.start()
    host, port = server.address
    counts = dict.fromkeys(OUTCOMES, 0)
    # FD baseline after one served request, so lazily-opened files (the
    # access log) are already counted; the post-shutdown count must come
    # back to (at most) this.
    async with await ServingClient.connect(host, port, "s") as warm:
        await warm.ask(ASKS["s"])
    fd_baseline = _open_fds()

    # One ENOSPC burst mid-run: a few journal appends hit a full disk.
    plan = FaultPlan(seed=seed)
    plan.arm("journal-append", action="enospc", after=3, times=2)
    server.root.journal.arm_faults(plan)

    try:
        await asyncio.gather(*(
            drive(host, port, index, rng, counts)
            for index in range(n_clients)))
        drained = await server.drain(timeout_s=10.0)
    finally:
        await server.stop()

    live = database_source(server.root.database)
    live_version = server.root.database.version

    # 1. Durability differential: disk == memory, byte for byte.
    replayed = SessionJournal(journal_path).replay()
    replay_ok = (database_source(replayed) == live
                 and replayed.version == live_version)

    # 2. The MLS invariant under chaos: zero cross-clearance leaks.
    events = server.audit.to_dicts() if server.audit is not None else []
    crosses = [e for e in events if e["kind"] == "cross_level_read"]
    lattice = server.root.lattice
    leaks = [e for e in crosses if not lattice.leq(e["object"], e["subject"])]

    # 3. Observability leak checks (only meaningful with tracing on).
    open_spans: list = []
    bad_lines: list[str] = []
    access_lines = 0
    if sink is not None:
        open_spans = [s for s in sink.spans
                      if "outcome" not in s.attrs or s.elapsed_s <= 0.0]
    if access_log_path is not None and access_log_path.exists():
        for line in access_log_path.read_text().splitlines():
            access_lines += 1
            try:
                entry = json.loads(line)
            except ValueError:
                bad_lines.append(line[:120])
                continue
            if not entry.get("trace_id") or "outcome" not in entry:
                bad_lines.append(line[:120])
    gc.collect()
    fd_final = _open_fds()

    outcome = ", ".join(f"{k}={v}" for k, v in counts.items() if v)
    print(f"serving chaos: seed={seed} clients={n_clients} ({outcome}), "
          f"{server.stats.checkpoints_total} checkpoints, "
          f"{server.stats.cancelled_total} cancelled, "
          f"{len(crosses)} cross-level reads, {len(leaks)} leaks, "
          f"drain={'clean' if drained else 'TIMEOUT'}, "
          f"replay={'identical' if replay_ok else 'DIVERGED'}"
          + (f", {len(sink.spans)} spans ({len(open_spans)} unclosed), "
             f"{access_lines} access lines, "
             f"fds {fd_baseline}->{fd_final}" if sink is not None else ""))
    if not replay_ok:
        print(f"FAIL: journal replay diverged from the live database "
              f"(live v{live_version}, replayed v{replayed.version})")
        return 1
    if leaks:
        for event in leaks[:10]:
            print(f"LEAK: {event}")
        return 1
    if not crosses:
        print("FAIL: no cross-level reads audited (trail not wired?)")
        return 1
    if not drained:
        print("FAIL: drain timed out with requests in flight")
        return 1
    if counts["enospc-clean"] == 0 and plan.history:
        print("FAIL: ENOSPC fired but no assert reported a clean failure")
        return 1
    if counts["ok"] == 0:
        print("FAIL: chaos drowned out every well-behaved client")
        return 1
    if sink is not None:
        if not sink.spans:
            print("FAIL: tracing enabled but no root spans reached the sink")
            return 1
        if open_spans:
            for span in open_spans[:5]:
                print(f"SPAN LEAK: {span!r} attrs={span.attrs}")
            return 1
        if access_log_path is not None:
            if bad_lines:
                for line in bad_lines[:5]:
                    print(f"BAD ACCESS LINE: {line}")
                return 1
            if access_lines != len(sink.spans):
                print(f"FAIL: {access_lines} access-log lines but "
                      f"{len(sink.spans)} root spans -- a request dodged "
                      f"one of the two exits")
                return 1
        if (fd_baseline is not None and fd_final is not None
                and fd_final > fd_baseline):
            print(f"FD LEAK: {fd_baseline} open fds after start, "
                  f"{fd_final} after shutdown")
            return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--clients", type=int, default=48)
    parser.add_argument("--trace", action="store_true",
                        help="serve with per-request tracing and check "
                             "every root span closes")
    parser.add_argument("--access-log", action="store_true",
                        help="write a JSONL access log next to the journal "
                             "and check every line (implies request scopes)")
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="multilog-chaos-") as tmp:
        sys.exit(asyncio.run(main(
            args.seed, args.clients, Path(tmp) / "wal.jsonl",
            trace=args.trace,
            access_log_path=(Path(tmp) / "access.jsonl"
                             if args.access_log else None))))
