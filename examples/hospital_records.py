#!/usr/bin/env python3
"""Civilian scenario: multilevel hospital records with a partial order.

The paper stresses that security labels form a *partial* order in
general, and that cautious belief under incomparable sources yields
multiple models ("reminiscent of the problem in object oriented systems
with multiple inheritance").  This example exercises exactly that:

* lattice: ``public < {clinical, billing} < board`` (a diamond);
* the clinical and billing departments record *conflicting* values for
  the same patient attribute at incomparable levels;
* the board-cleared auditor's cautious belief genuinely forks -- the
  library reports the conflict instead of picking silently;
* a user-defined belief mode (``corroborated``) and the extended SQL
  front-end round the tour off.

Run: ``python examples/hospital_records.py``
"""

from repro.belief import cautious, cautious_conflicts
from repro.lattice import SecurityLattice
from repro.mls import MLSRelation, MLSchema, SessionCursor
from repro.msql import Catalog, SqlSession
from repro.multilog import MultiLogSession, relation_to_multilog
from repro.reporting import relation_table


def build_lattice() -> SecurityLattice:
    return SecurityLattice(
        ["public", "clinical", "billing", "board"],
        [("public", "clinical"), ("public", "billing"),
         ("clinical", "board"), ("billing", "board")],
    )


def build_records(lattice: SecurityLattice) -> MLSRelation:
    schema = MLSchema(
        "records",
        ["patient", "status", "cost_class"],
        key="patient",
        lattice=lattice,
    )
    relation = MLSRelation(schema)
    public = SessionCursor(relation, "public")
    clinical = SessionCursor(relation, "clinical")
    billing = SessionCursor(relation, "billing")

    public.insert({"patient": "doe", "status": "admitted", "cost_class": "standard"})
    # Clinical corrects the status at its own (incomparable-to-billing) level.
    clinical.update({"patient": "doe"}, {"status": "critical"})
    # Billing reclassifies the cost -- and also records its own view of
    # the status, conflicting with clinical's.
    billing.update({"patient": "doe"}, {"cost_class": "premium", "status": "stable"})
    public.insert({"patient": "roe", "status": "discharged", "cost_class": "standard"})
    return relation


def main() -> None:
    lattice = build_lattice()
    print("diamond lattice, incomparable pairs:", sorted(lattice.incomparable_pairs()))
    relation = build_records(lattice)
    print("\n== Stored relation ==")
    print(relation_table(relation))

    print("\n== Cautious belief at board: multiple models ==")
    board_view = cautious(relation, "board")
    print(relation_table(board_view))
    for conflict in cautious_conflicts(relation, "board"):
        candidates = ", ".join(f"{c.value}/{c.cls}" for c in conflict.candidates)
        print(f"  conflict on {conflict.key[0]}.{conflict.attribute}: {candidates}")

    print("\n== Department views are conflict-free ==")
    for level in ("clinical", "billing"):
        view = cautious(relation, level)
        doe = [t for t in view if t.value("patient") == "doe"]
        print(f"  {level} believes doe.status =",
              sorted({t.value("status") for t in doe}))

    print("\n== The same database in MultiLog, with a user-defined mode ==")
    db = relation_to_multilog(relation)
    from repro.multilog import parse_clause
    db.add(parse_clause(
        "bel(P, K, A, V, C, H, corroborated) :- "
        "bel(P, K, A, V, C, H, fir), bel(P, K, A, V, C, L, opt), order(L, H)."
    ))
    session = MultiLogSession(db, clearance="board")
    print("  modes:", sorted(session.modes))
    answers = session.ask("board[records(K : status -C-> V)] << cau")
    print("  board cautious status beliefs:",
          sorted((a["K"], a["V"]) for a in answers))

    print("\n== Extended SQL at the billing desk ==")
    catalog = Catalog()
    catalog.register(relation)
    sql = SqlSession(catalog, "billing")
    result = sql.execute(
        "select patient, cost_class from records "
        "where status <> discharged believed cautiously"
    )
    for row in result:
        print("  ", row)


if __name__ == "__main__":
    main()
