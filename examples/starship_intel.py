#!/usr/bin/env python3
"""Intelligence-analysis scenario: belief speculation across clearances.

The paper's motivating ability is "theorizing about the belief of others,
perhaps at different security levels".  This example plays a full
scenario on the Mission database:

* an S-cleared analyst reconstructs what U- and C-cleared colleagues
  believe in each mode (reading *down* is allowed; reading up never is);
* she detects cover stories: tuples a lower level believes that her own
  level contradicts;
* she runs the update history forward (a new covert mission with a cover
  story) and watches the beliefs shift;
* the same questions are answered in MultiLog and cross-checked through
  the reduction semantics (Theorem 6.1 live).

Run: ``python examples/starship_intel.py``
"""

from repro.belief import belief, cautious
from repro.errors import AccessDeniedError
from repro.mls import SessionCursor
from repro.multilog import MultiLogSession, check_equivalence
from repro.reporting import relation_table
from repro.workloads import mission_multilog, mission_relation


def speculate(relation, analyst_level: str) -> None:
    """What does each dominated level believe, in each mode?"""
    lattice = relation.schema.lattice
    for level in sorted(lattice.down_set(analyst_level)):
        for mode in ("fir", "opt", "cau"):
            view = belief(relation, level, mode)
            ships = sorted({t.value("starship") for t in view})
            print(f"  level {level}, mode {mode}: {ships}")


def cover_stories(relation, analyst_level: str) -> list[tuple]:
    """Keys where a lower level's cautious belief disagrees with ours."""
    mine = {
        (t.value("starship"), t.value("objective"))
        for t in cautious(relation, analyst_level)
    }
    lattice = relation.schema.lattice
    findings = []
    for level in sorted(lattice.strict_down_set(analyst_level)):
        for t in cautious(relation, level):
            pair = (t.value("starship"), t.value("objective"))
            ours = {o for s, o in mine if s == pair[0]}
            if ours and pair[1] not in ours:
                findings.append((level, pair[0], pair[1], sorted(ours)))
    return findings


def main() -> None:
    relation, _ = mission_relation()

    print("== The S analyst speculates about everyone's beliefs ==")
    speculate(relation, "s")

    print("\n== Cover stories visible from S ==")
    for level, ship, their_story, truth in cover_stories(relation, "s"):
        print(f"  level {level} believes {ship} is on {their_story!r}; "
              f"S-level truth: {truth}")

    print("\n== No read-up: a C session cannot speculate about S ==")
    try:
        belief(relation, "t", "cau")  # fine: t dominates everything
        cursor = SessionCursor(relation, "c")
        _ = cursor.read()
        # Reading *data* above c is simply invisible; an explicit attempt
        # to delete above one's level is refused:
        cursor.delete({"starship": "avenger"})
    except AccessDeniedError as exc:
        print(f"  refused as expected: {exc}")

    print("\n== A new covert mission, with a cover story for U ==")
    at_u = SessionCursor(relation, "u")
    at_s = SessionCursor(relation, "s")
    at_u.insert({"starship": "nebula", "objective": "survey",
                 "destination": "titan"})
    at_s.update({"starship": "nebula"}, {"objective": "interdiction"})
    print(relation_table(relation.where(starship="nebula")))
    print("  U still cautiously believes:",
          [(t.value("objective")) for t in cautious(relation, "u")
           if t.value("starship") == "nebula"])
    print("  S cautiously believes:      ",
          [(t.value("objective")) for t in cautious(relation, "s")
           if t.value("starship") == "nebula"])

    print("\n== The same speculation in MultiLog ==")
    session = MultiLogSession(mission_multilog(), clearance="s")
    for level in ("u", "c", "s"):
        answers = session.ask(
            f"{level}[mission(K : objective -C-> V)] << cau"
        )
        ships = sorted({(a["K"], a["V"]) for a in answers})
        print(f"  cautious beliefs at {level}: {ships}")

    print("\n== Theorem 6.1, live ==")
    report = check_equivalence(mission_multilog(), "s")
    print("  operational == reduction:", report.equivalent)


if __name__ == "__main__":
    main()
