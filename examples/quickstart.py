#!/usr/bin/env python3
"""Quickstart: the whole reproduction in five minutes.

Walks the paper's running example end to end:

1. build the Mission relation (Figure 1);
2. look at it the Jajodia-Sandhu way (Figures 2-3) and spot the surprise
   stories;
3. compute the three belief views with beta (Figures 6-8);
4. ask the same questions declaratively in MultiLog, with proof trees;
5. run the Section 3.2 extended-SQL query.

Run: ``python examples/quickstart.py``
"""

from repro.belief import cautious, firm, optimistic
from repro.mls import surprise_stories_at, view_at
from repro.msql import Catalog, SqlSession, WITHOUT_DOUBT_QUERY
from repro.multilog import MultiLogSession
from repro.reporting import relation_table
from repro.workloads import mission_multilog_source, mission_relation


def main() -> None:
    # 1. The MLS relation of Figure 1.
    relation, tids = mission_relation()
    print("== Figure 1: the Mission relation ==")
    print(relation_table(relation, tids))

    # 2. What a C-cleared analyst sees under Jajodia-Sandhu (Figure 3).
    print("\n== What a C-cleared analyst sees (Figure 3) ==")
    print(relation_table(view_at(relation, "c")))
    print("\nSurprise stories leaked to C:")
    for story in surprise_stories_at(relation, "c"):
        print("  *", story)

    # 3. The three belief modes (Figures 6-8).
    for mode_name, fn in (("firm", firm), ("optimistic", optimistic),
                          ("cautious", cautious)):
        print(f"\n== beta(Mission, C, {mode_name}) ==")
        print(relation_table(fn(relation, "c")))

    # 4. The same database in MultiLog, queried declaratively.
    session = MultiLogSession(mission_multilog_source(), clearance="s")
    print("\n== MultiLog: who is believed (cautiously, at S) to spy? ==")
    answers = session.ask("s[mission(K : objective -C-> spying)] << cau")
    for answer in answers:
        print("  ", answer)

    print("\n== ... and the proof tree for the voyager answer ==")
    tree = session.prove("s[mission(voyager : objective -s-> spying)] << cau")
    print(tree.pretty() if tree else "(no proof)")

    # 5. The paper's headline SQL query (Section 3.2).
    catalog = Catalog()
    catalog.register(relation)
    print("\n== Extended SQL: spying on Mars 'without any doubt' ==")
    for level in ("u", "c", "s"):
        result = SqlSession(catalog, level).execute(WITHOUT_DOUBT_QUERY)
        print(f"  at {level}: {[row[0] for row in result]}")


if __name__ == "__main__":
    main()
