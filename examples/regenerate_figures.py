#!/usr/bin/env python3
"""Regenerate every figure of the paper and print the artifacts.

This is the evaluation section of the paper, re-run: each figure is
rebuilt from the actual machinery and checked against the printed
contents.  ``--write-experiments`` refreshes EXPERIMENTS.md.

Run: ``python examples/regenerate_figures.py [--write-experiments]``
"""

import sys
from pathlib import Path

from repro.reporting import all_figures
from repro.reporting.experiments import build_experiments_markdown


def main() -> None:
    figures = all_figures()
    for figure in figures:
        print(figure)
        print()
    verified = sum(1 for f in figures if f.verified)
    print(f"{verified}/{len(figures)} artifacts verified against the paper")
    if "--write-experiments" in sys.argv:
        path = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
        path.write_text(build_experiments_markdown())
        print(f"wrote {path}")
    if verified != len(figures):
        raise SystemExit(1)


if __name__ == "__main__":
    main()
