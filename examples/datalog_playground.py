#!/usr/bin/env python3
"""The CORAL stand-in as a library: the Datalog engine on its own.

Proposition 6.1 says Datalog is the degenerate case of MultiLog; this
example shows the substrate both ways:

* classical programs (ancestor, same-generation, reachability with
  stratified negation) evaluated bottom-up, top-down and via magic sets,
  with identical answers;
* the same program pushed through MultiLog's front door;
* a peek at the machinery: stratification and the unsafe Figure 12
  axioms being rejected.

Run: ``python examples/datalog_playground.py``
"""

from repro.datalog import (
    Program,
    TopDownEngine,
    answer_rows,
    evaluate,
    magic_query,
    parse_atom,
    parse_program,
    strata,
)
from repro.errors import UnsafeRuleError
from repro.multilog import figure12_axioms, run_both

ANCESTOR = """
parent(abe, homer).   parent(mona, homer).
parent(homer, bart).  parent(homer, lisa).  parent(homer, maggie).
parent(marge, bart).  parent(marge, lisa).  parent(marge, maggie).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""

SAME_GENERATION = """
flat(a, b). flat(b, c).
up(d, a). up(e, b). up(f, c).
down(a, g). down(b, h). down(c, i).
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
"""

NEGATION = """
edge(a, b). edge(b, c). edge(c, d).
node(a). node(b). node(c). node(d). node(e).
reach(X, Y) :- edge(X, Y).
reach(X, Y) :- reach(X, Z), edge(Z, Y).
isolated(X) :- node(X), not connected(X).
connected(X) :- reach(X, Y).
connected(X) :- reach(Y, X).
"""


def show(title: str, program_text: str, query_text: str) -> None:
    program = parse_program(program_text)
    goal = parse_atom(query_text)
    bottom_up = answer_rows(evaluate(program), goal)
    top_down = TopDownEngine(program).answer_rows(goal)
    print(f"== {title}: {query_text} ==")
    print("  bottom-up :", sorted(bottom_up))
    print("  top-down  :", sorted(top_down))
    try:
        magic = magic_query(parse_program(program_text), goal)
        print("  magic sets:", sorted(magic))
        assert magic == bottom_up
    except Exception as exc:  # negation limits the rewriting
        print("  magic sets: (skipped:", exc, ")")
    assert bottom_up == top_down


def main() -> None:
    show("Ancestor", ANCESTOR, "ancestor(abe, X)")
    show("Same generation", SAME_GENERATION, "sg(a, X)")
    show("Stratified negation", NEGATION, "isolated(X)")

    print("\n== Strata of the negation program ==")
    for i, group in enumerate(strata(parse_program(NEGATION))):
        print(f"  stratum {i}: {group}")

    print("\n== Proposition 6.1: the same program through MultiLog ==")
    multilog, native = run_both(ANCESTOR, "ancestor(abe, X)")
    print("  multilog:", sorted(multilog))
    print("  native  :", sorted(native))
    assert multilog == native

    print("\n== Figure 12's axioms, as printed, are unsafe ==")
    try:
        Program(figure12_axioms()).check_safety()
    except UnsafeRuleError as exc:
        print("  rejected:", exc)


if __name__ == "__main__":
    main()
